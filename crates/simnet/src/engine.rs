//! The discrete-event simulation engine.
//!
//! The engine owns a set of [`Node`]s and a future-event list. Nodes react to
//! messages by emitting further messages through a [`Context`]; the engine
//! stamps each outgoing message with the latency and hop count provided by
//! the configured [`Fabric`] and delivers it at the corresponding future
//! instant.
//!
//! # FIFO links
//!
//! The MHH correctness argument (paper, Sections 3 and 4.1) depends on FIFO
//! message delivery per link: the `sub_migration_ack` "pushes" all in-transit
//! events on a link ahead of it. The engine guarantees FIFO per
//! `(from, to)` pair **by construction**: every ordered pair carries a
//! channel clock, and a message sampled with latency `l` is delivered at
//! `max(now + l, last_delivery_on_link)` — so even a variable-latency
//! fabric ([`JitteredFabric`](crate::fabric::JitteredFabric)) whose later
//! message samples a smaller latency cannot overtake an earlier one; ties
//! are broken by the global send sequence number, which increases
//! monotonically. Under a constant-latency fabric the clamp never fires
//! (delivery times are already monotone per link), which is what keeps
//! zero-jitter runs byte-identical to the pre-clock engine. Property tests
//! in this module and in `tests/network_substrate.rs` check the guarantee
//! directly.
//!
//! # The hot path
//!
//! One delivery = one [`EventQueue`] pop, one node callback, and one
//! [`LinkClocks::advance_send`] + [`TrafficStats::record`] per outgoing
//! message. All three structures are allocation-free in steady state:
//!
//! * the future-event list is a pooled, indexed 4-ary min-heap
//!   ([`crate::queue`]) — sifting moves 24-byte keys, envelopes sit in
//!   recycled slab slots;
//! * the channel clocks are a dense flat table for grid-sized runs and
//!   sharded open addressing at city scale ([`crate::clocks`]);
//! * the per-delivery outbox is an engine-owned scratch buffer swapped into
//!   the [`Context`] and drained back out, so its capacity is reused across
//!   every delivery of the run;
//! * stats record through interned kind indices ([`crate::stats`]).
//!
//! [`Engine::perf`] reports the peak queue depth and a storage-growth
//! counter so benches can assert the steady state really stops allocating.
//! The pre-overhaul engine survives as [`crate::reference::ReferenceEngine`]
//! — a differential oracle: `tests/engine_equivalence.rs` drives identical
//! seeded workloads through both and asserts identical delivery sequences.

use std::sync::Arc;

use crate::clocks::LinkClocks;
use crate::fabric::Fabric;
use crate::faults::{DropCause, DropRecord, FaultSchedule, LinkFate, LossModel};
use crate::ids::NodeId;
use crate::queue::{EventQueue, PopBefore};
use crate::stats::{Message, TrafficStats};
use crate::time::{SimDuration, SimTime};

/// A message in flight, as seen by the receiving node.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// The sender (equal to the destination for timers and injected actions).
    pub from: NodeId,
    /// The destination node.
    pub to: NodeId,
    /// When the message was sent.
    pub sent_at: SimTime,
    /// The fate sampled at send time by the installed [`LossModel`], if any
    /// (always [`LinkFate::Intact`] on lossless links, timers and
    /// self-deliveries). Sampling happens at *send* time — where the link
    /// send index is in hand — while the drop itself is recorded at
    /// *delivery* time, keeping the drop log in delivery order for both the
    /// serial and the parallel engine.
    pub fate: LinkFate,
    /// The payload.
    pub msg: M,
}

/// Behaviour of a simulated node.
pub trait Node<M: Message> {
    /// Handle one delivered message. All outgoing traffic goes through `ctx`.
    fn on_message(&mut self, env: Envelope<M>, ctx: &mut Context<M>);
}

/// Per-delivery context handed to a node: lets the node read the clock and
/// queue outgoing messages/timers. The engine drains it after the callback.
///
/// The outbox storage is owned by the engine and swapped in per delivery, so
/// a warmed-up run performs no allocation here no matter how many messages
/// a callback emits.
#[derive(Debug)]
pub struct Context<M> {
    now: SimTime,
    self_id: NodeId,
    outbox: Vec<Outgoing<M>>,
    fanout_allocs: u64,
}

#[derive(Debug)]
pub(crate) enum Outgoing<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimDuration, msg: M },
}

impl<M> Context<M> {
    /// Build a context around an existing (reused) outbox buffer.
    pub(crate) fn with_outbox(now: SimTime, self_id: NodeId, outbox: Vec<Outgoing<M>>) -> Self {
        Context {
            now,
            self_id,
            outbox,
            fanout_allocs: 0,
        }
    }

    /// Surrender the outbox (engine-side drain after the node callback).
    pub(crate) fn into_outbox(self) -> Vec<Outgoing<M>> {
        self.outbox
    }

    /// Fan-out allocations reported by the node during this delivery (see
    /// [`note_fanout_allocs`](Self::note_fanout_allocs)); harvested by the
    /// engine before the outbox drain.
    pub(crate) fn fanout_allocs(&self) -> u64 {
        self.fanout_allocs
    }

    /// Report `n` payload-buffer allocations performed while fanning an
    /// event out to its matched destinations. Nodes that serialize once and
    /// share the rendered buffer report 1 per publish; a clone-per-subscriber
    /// baseline reports 1 per destination. Accumulated into
    /// [`EnginePerf::fanout_allocs`].
    pub fn note_fanout_allocs(&mut self, n: u64) {
        self.fanout_allocs += n;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node currently executing.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Send a message to another node (delivered after the fabric latency).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Outgoing::Send { to, msg });
    }

    /// Schedule a message back to the executing node after `delay`.
    /// Timers do not traverse the network and are never counted as traffic.
    pub fn schedule(&mut self, delay: SimDuration, msg: M) {
        self.outbox.push(Outgoing::Timer { delay, msg });
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hard cap on the number of deliveries in one `run` call; exceeded caps
    /// return [`RunOutcome::HitDeliveryLimit`] so runaway protocols surface
    /// as test failures instead of hangs.
    pub max_deliveries: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_deliveries: 500_000_000,
        }
    }
}

/// Why a `run_*` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The future event list drained completely.
    Drained,
    /// The configured horizon was reached with work still pending.
    ReachedHorizon,
    /// The safety delivery limit was hit.
    HitDeliveryLimit,
}

/// Engine-level performance counters, read after (or during) a run.
///
/// `alloc_events` counts storage-growth events across the engine's hot-path
/// structures: future-event-list slab slots and heap regrowths, channel
/// clock-table rehashes, and scratch-outbox capacity growths. Divided by
/// [`deliveries`](Self::deliveries) it is the *allocations-per-delivery
/// sanity counter*: in steady state the ratio falls toward zero because
/// every structure recycles its storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnginePerf {
    /// Messages delivered so far (including timers).
    pub deliveries: u64,
    /// High-water mark of the future event list (summed across shards for
    /// the parallel engine, approximating the global in-flight set).
    pub peak_queue_depth: usize,
    /// Storage growth events across queue slab/heap, clock table and
    /// scratch outbox.
    pub alloc_events: u64,
    /// Payload-buffer allocations reported by nodes while fanning events out
    /// (see [`Context::note_fanout_allocs`]). Zero unless the workload
    /// models payloads.
    pub fanout_allocs: u64,
}

/// Wall-clock cost of each hot-path phase, accumulated while
/// [`Engine::enable_phase_profile`] is on. The buckets partition one
/// delivery: future-event-list pops and pushes (`queue_ns`), fabric
/// sampling plus channel-clock clamping (`clocks_ns`), the node callback
/// (`protocol_ns`), and traffic accounting (`stats_ns`). Timer reads add a
/// fixed overhead per phase boundary, so profiled throughput is *not* the
/// number to report — run the breakdown pass separately from the timing
/// pass (as `sweep_runner` does).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Nanoseconds spent popping and pushing the future event list.
    pub queue_ns: u64,
    /// Nanoseconds spent sampling the fabric and advancing channel clocks.
    pub clocks_ns: u64,
    /// Nanoseconds spent inside node `on_message` callbacks.
    pub protocol_ns: u64,
    /// Nanoseconds spent recording traffic statistics.
    pub stats_ns: u64,
}

impl PhaseBreakdown {
    /// Total accounted nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.queue_ns + self.clocks_ns + self.protocol_ns + self.stats_ns
    }
}

/// Reusable engine storage: the pooled future-event list, the channel-clock
/// table, and the scratch outbox. A sweep worker that runs hundreds of
/// scenario points can [`recycle`](Engine::recycle) each finished engine
/// and build the next one with [`Engine::new_in`], so the slabs warmed up
/// by the first point absorb every later one without allocating — the
/// cross-*run* analogue of the engine's cross-delivery pooling.
#[derive(Debug)]
pub struct EngineArena<M> {
    queue: EventQueue<M>,
    clocks: LinkClocks,
    scratch: Vec<Outgoing<M>>,
}

impl<M> EngineArena<M> {
    /// An empty arena (cold storage; the first run warms it up).
    pub fn new() -> Self {
        EngineArena {
            queue: EventQueue::new(),
            clocks: LinkClocks::new(0),
            scratch: Vec::new(),
        }
    }
}

impl<M> Default for EngineArena<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// The discrete-event engine.
pub struct Engine<M: Message, N: Node<M>> {
    nodes: Vec<N>,
    queue: EventQueue<M>,
    now: SimTime,
    seq: u64,
    fabric: Arc<dyn Fabric>,
    stats: TrafficStats,
    config: EngineConfig,
    delivered: u64,
    /// Per-`(from, to)` channel clocks: the latest delivery instant already
    /// scheduled on each ordered pair. Deliveries are clamped to
    /// `max(now + latency, clock)`, which is what makes per-link FIFO hold
    /// under variable-latency fabrics. Dense flat table for grid-sized
    /// runs, sharded open addressing above [`crate::clocks::DENSE_NODE_LIMIT`].
    link_clock: LinkClocks,
    /// Engine-owned outbox storage, swapped into each delivery's
    /// [`Context`]; `scratch_cap`/`scratch_grows` track its growth for the
    /// allocation sanity counter.
    scratch: Vec<Outgoing<M>>,
    scratch_cap: usize,
    scratch_grows: u64,
    /// Fault plan consulted on the delivery path. `None` (the zero-fault
    /// fast path) whenever no non-empty schedule was installed, so
    /// fault-free runs stay byte-identical to a faultless engine.
    faults: Option<Arc<FaultSchedule>>,
    /// Probabilistic link loss/corruption sampled on the send path. `None`
    /// (the zero-loss fast path) whenever no lossy model was installed, so
    /// loss-free runs stay byte-identical to a loss-free engine.
    loss: Option<LossModel>,
    /// Every envelope dropped by the fault plan or the loss model, in
    /// delivery order.
    drops: Vec<DropRecord>,
    /// Fan-out allocations harvested from delivery contexts (see
    /// [`Context::note_fanout_allocs`]).
    fanout_allocs: u64,
    /// Next reserved low sequence number handed to
    /// [`schedule_external_reserved`](Self::schedule_external_reserved).
    external_next: u64,
    /// One past the last reserved low sequence number.
    external_end: u64,
    /// Per-phase wall-clock accumulator; `None` (the default) keeps the hot
    /// path free of timer reads.
    profile: Option<Box<PhaseBreakdown>>,
}

impl<M: Message, N: Node<M>> Engine<M, N> {
    /// Create an engine over the given nodes and fabric.
    pub fn new(nodes: Vec<N>, fabric: Arc<dyn Fabric>) -> Self {
        Self::new_in(nodes, fabric, EngineArena::new())
    }

    /// Create an engine reusing the storage of a recycled one (see
    /// [`EngineArena`]): the event-list slab, clock table, and scratch
    /// outbox keep their capacity but are reset to empty, so a warmed arena
    /// makes the whole run allocation-free and [`perf`](Self::perf) reports
    /// zero `alloc_events` until traffic outgrows the pool.
    pub fn new_in(nodes: Vec<N>, fabric: Arc<dyn Fabric>, mut arena: EngineArena<M>) -> Self {
        arena.queue.reset();
        arena.clocks.reset(nodes.len());
        arena.scratch.clear();
        let scratch_cap = arena.scratch.capacity();
        Engine {
            nodes,
            queue: arena.queue,
            now: SimTime::ZERO,
            seq: 0,
            fabric,
            stats: TrafficStats::new(),
            config: EngineConfig::default(),
            delivered: 0,
            link_clock: arena.clocks,
            scratch: arena.scratch,
            scratch_cap,
            scratch_grows: 0,
            faults: None,
            loss: None,
            drops: Vec::new(),
            fanout_allocs: 0,
            external_next: 0,
            external_end: 0,
            profile: None,
        }
    }

    /// Replace the default configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (metrics collection after a run).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (setup before a run).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Number of messages delivered so far (including timers).
    pub fn deliveries(&self) -> u64 {
        self.delivered
    }

    /// Number of messages still waiting in the future event list.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Hot-path performance counters (peak queue depth, storage growths).
    pub fn perf(&self) -> EnginePerf {
        EnginePerf {
            deliveries: self.delivered,
            peak_queue_depth: self.queue.peak_len(),
            alloc_events: self.queue.alloc_events()
                + self.link_clock.alloc_events()
                + self.scratch_grows,
            fanout_allocs: self.fanout_allocs,
        }
    }

    /// Start accumulating the per-phase wall-clock breakdown (see
    /// [`PhaseBreakdown`]). Adds two timer reads per phase boundary, so
    /// enable it only on dedicated profiling passes.
    pub fn enable_phase_profile(&mut self) {
        self.profile = Some(Box::default());
    }

    /// The accumulated phase breakdown, if profiling was enabled.
    pub fn phase_breakdown(&self) -> Option<PhaseBreakdown> {
        self.profile.as_deref().copied()
    }

    /// Install a fault schedule, consulted on every delivery. An **empty**
    /// schedule is not installed at all: the delivery path then performs no
    /// fault check, keeping zero-fault runs byte-identical to a faultless
    /// engine.
    pub fn set_faults(&mut self, schedule: Arc<FaultSchedule>) {
        self.faults = (!schedule.is_empty()).then_some(schedule);
    }

    /// The fault schedule in effect, if a non-empty one was installed.
    pub fn faults(&self) -> Option<&FaultSchedule> {
        self.faults.as_deref()
    }

    /// Install a loss model, sampled on every cross-node send. A
    /// **lossless** model is not installed at all: the send path then
    /// performs no fate sampling, keeping zero-loss runs byte-identical to
    /// a loss-free engine.
    pub fn set_loss(&mut self, model: LossModel) {
        self.loss = (!model.is_lossless()).then_some(model);
    }

    /// The loss model in effect, if a lossy one was installed.
    pub fn loss(&self) -> Option<&LossModel> {
        self.loss.as_ref()
    }

    /// Every envelope the fault schedule or loss model dropped so far, in
    /// delivery order.
    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    /// Inject a message from the outside world (workload driver) to be
    /// delivered to `to` at absolute time `at`. The `from` field of the
    /// envelope is set to `to` itself, mirroring a local timer.
    pub fn schedule_external(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.next_seq();
        self.queue.push(
            at,
            seq,
            Envelope {
                from: to,
                to,
                sent_at: at,
                fate: LinkFate::Intact,
                msg,
            },
        );
    }

    /// Reserve the `count` lowest sequence numbers for external injections
    /// that will arrive *lazily* via
    /// [`schedule_external_reserved`](Self::schedule_external_reserved).
    ///
    /// Must be called before any message has been sequenced. Afterwards,
    /// internally generated traffic draws sequence numbers from `count`
    /// upwards, so a lazily injected external event at instant `t` sorts
    /// before every internal event at the same `t` — exactly where it would
    /// have sorted had all externals been scheduled upfront. This is what
    /// makes lazy timeline injection byte-identical to eager injection
    /// while keeping the future-event list's peak depth proportional to the
    /// *in-flight* set instead of the whole timeline.
    pub fn reserve_external_seqs(&mut self, count: u64) {
        assert!(
            self.seq == 0 && self.external_end == 0,
            "reserve_external_seqs must run before any message is sequenced"
        );
        self.seq = count;
        self.external_next = 0;
        self.external_end = count;
    }

    /// Inject one external message using the next reserved low sequence
    /// number (see [`reserve_external_seqs`](Self::reserve_external_seqs)).
    /// Injections must happen in the intended tie-break order; panics when
    /// the reservation is exhausted.
    pub fn schedule_external_reserved(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(
            self.external_next < self.external_end,
            "external sequence reservation exhausted"
        );
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.external_next;
        self.external_next += 1;
        self.queue.push(
            at,
            seq,
            Envelope {
                from: to,
                to,
                sent_at: at,
                fate: LinkFate::Intact,
                msg,
            },
        );
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Drain a delivery's outbox into the future event list. The buffer is
    /// left empty (capacity intact) for reuse.
    ///
    /// Variable fabrics sample per-message variation keyed off the **link
    /// send index** — how many messages this ordered `(from, to)` pair has
    /// carried — not the global send sequence. Every send on a link is
    /// performed by its `from` node, so the index stream is identical under
    /// any partitioning of the node set: the parallel engine reproduces the
    /// serial engine's latency samples shard-locally. Constant fabrics
    /// ignore the key entirely, which keeps zero-jitter runs byte-identical
    /// across the change.
    fn enqueue_outgoing(&mut self, origin: NodeId, sent_at: SimTime, out: &mut Vec<Outgoing<M>>) {
        let profiling = self.profile.is_some();
        for o in out.drain(..) {
            match o {
                Outgoing::Send { to, msg } => {
                    let seq = self.next_seq();
                    let t0 = profiling.then(std::time::Instant::now);
                    // One probe of the clock table serves both halves of the
                    // hot path: the closure receives the link send index,
                    // makes the single virtual fabric call, and the returned
                    // proposal is FIFO-clamped in place — never deliver
                    // before anything already scheduled on this ordered pair.
                    let fabric = &*self.fabric;
                    let loss = self.loss;
                    let mut hops = 0;
                    let mut fate = LinkFate::Intact;
                    let at = self.link_clock.advance_send(origin, to, |link_seq| {
                        let cost = fabric.link(origin, to, sent_at, link_seq);
                        hops = cost.hops;
                        // Fate is sampled here, where the link send index is
                        // in hand, keyed exactly like jitter on
                        // `(seed, from, to, link_seq)`. Lost/corrupted
                        // messages still advance the link clock, consume the
                        // send index and count in traffic stats — the bytes
                        // *were* sent — so the jitter stream and the stats
                        // stay byte-identical whatever the fates.
                        if let (Some(m), false) = (&loss, origin == to) {
                            fate = m.fate(origin, to, link_seq);
                        }
                        sent_at + cost.latency
                    });
                    let t1 = profiling.then(std::time::Instant::now);
                    let bytes = msg.wire_bytes();
                    self.stats
                        .record(msg.traffic_class(), msg.kind(), hops, bytes);
                    if bytes > 0 {
                        self.stats.record_link(origin.0, to.0, bytes);
                    }
                    let t2 = profiling.then(std::time::Instant::now);
                    self.queue.push(
                        at,
                        seq,
                        Envelope {
                            from: origin,
                            to,
                            sent_at,
                            fate,
                            msg,
                        },
                    );
                    if let (Some(p), Some(t0), Some(t1), Some(t2)) =
                        (self.profile.as_deref_mut(), t0, t1, t2)
                    {
                        p.clocks_ns += (t1 - t0).as_nanos() as u64;
                        p.stats_ns += (t2 - t1).as_nanos() as u64;
                        p.queue_ns += t2.elapsed().as_nanos() as u64;
                    }
                }
                Outgoing::Timer { delay, msg } => {
                    let seq = self.next_seq();
                    let t0 = profiling.then(std::time::Instant::now);
                    self.queue.push(
                        sent_at + delay,
                        seq,
                        Envelope {
                            from: origin,
                            to: origin,
                            sent_at,
                            fate: LinkFate::Intact,
                            msg,
                        },
                    );
                    if let (Some(p), Some(t0)) = (self.profile.as_deref_mut(), t0) {
                        p.queue_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
            }
        }
    }

    /// Why an envelope about to be delivered at `at` must be dropped, if it
    /// must. A message lost in flight never reaches its destination, so loss
    /// wins over a fault at the destination; a corrupted message *does*
    /// arrive (and is discarded by the receiver's checksum), so a crashed
    /// destination wins over corruption.
    #[inline]
    fn drop_cause(&self, env: &Envelope<M>, at: SimTime) -> Option<DropCause> {
        if env.fate == LinkFate::Lost {
            return Some(DropCause::Loss);
        }
        if let Some(faults) = &self.faults {
            if let Some((window, _)) = faults.verdict(env.from, env.to, at) {
                return Some(DropCause::Fault(window));
            }
        }
        if env.fate == LinkFate::Corrupted {
            return Some(DropCause::Corruption);
        }
        None
    }

    /// Deliver one already-popped event: advance the clock, run the node
    /// callback with the engine's scratch outbox, enqueue what it emitted.
    fn deliver(&mut self, at: SimTime, env: Envelope<M>) {
        debug_assert!(at >= self.now, "time must be monotone");
        self.now = at;
        // Fault/loss consultation: a dropped envelope is recorded, never
        // silently vanished, and the destination's callback does not run —
        // crashed nodes receive nothing (timers included), partitioned
        // links deliver nothing, and lost/corrupted messages die here.
        // Absent a schedule and a loss model this branch is not taken and
        // the path below is the unchanged fast path.
        if let Some(cause) = self.drop_cause(&env, at) {
            self.drops.push(DropRecord {
                at,
                from: env.from,
                to: env.to,
                kind: env.msg.kind(),
                class: env.msg.traffic_class(),
                cause,
            });
            return;
        }
        self.delivered += 1;
        self.stats.deliveries += 1;
        let to = env.to;
        let mut ctx = Context::with_outbox(at, to, std::mem::take(&mut self.scratch));
        let t0 = self.profile.is_some().then(std::time::Instant::now);
        self.nodes[to.index()].on_message(env, &mut ctx);
        if let (Some(p), Some(t0)) = (self.profile.as_deref_mut(), t0) {
            p.protocol_ns += t0.elapsed().as_nanos() as u64;
        }
        self.fanout_allocs += ctx.fanout_allocs();
        let mut out = ctx.into_outbox();
        if out.capacity() > self.scratch_cap {
            self.scratch_cap = out.capacity();
            self.scratch_grows += 1;
        }
        self.enqueue_outgoing(to, at, &mut out);
        debug_assert!(out.is_empty());
        self.scratch = out;
    }

    /// Pop the next due event, charging the pop to the queue phase when
    /// profiling. `strict` selects the strictly-before horizon semantics.
    #[inline]
    fn profiled_pop(&mut self, horizon: SimTime, strict: bool) -> PopBefore<M> {
        let t0 = self.profile.is_some().then(std::time::Instant::now);
        let r = if strict {
            self.queue.pop_strictly_before(horizon)
        } else {
            self.queue.pop_at_or_before(horizon)
        };
        if let (Some(p), Some(t0)) = (self.profile.as_deref_mut(), t0) {
            p.queue_ns += t0.elapsed().as_nanos() as u64;
        }
        r
    }

    /// Deliver a single message. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let t0 = self.profile.is_some().then(std::time::Instant::now);
        let popped = self.queue.pop();
        if let (Some(p), Some(t0)) = (self.profile.as_deref_mut(), t0) {
            p.queue_ns += t0.elapsed().as_nanos() as u64;
        }
        match popped {
            Some((at, env)) => {
                self.deliver(at, env);
                true
            }
            None => false,
        }
    }

    /// Run until the future event list is empty or a limit is hit.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        let budget = self.config.max_deliveries;
        let start = self.delivered;
        while self.step() {
            if self.delivered - start >= budget {
                return RunOutcome::HitDeliveryLimit;
            }
        }
        RunOutcome::Drained
    }

    /// Run until the clock passes `horizon` (events scheduled later stay in
    /// the queue), the queue drains, or a limit is hit.
    ///
    /// The hot loop performs a *single* queue access per delivery:
    /// [`EventQueue::pop_at_or_before`] peeks the root key in place and only
    /// pops when the event is due (the old loop peeked the `BinaryHeap`,
    /// then `step()` popped the same entry again).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let budget = self.config.max_deliveries;
        let start = self.delivered;
        loop {
            match self.profiled_pop(horizon, false) {
                PopBefore::Empty => return RunOutcome::Drained,
                PopBefore::Later => return RunOutcome::ReachedHorizon,
                PopBefore::Due(at, env) => {
                    self.deliver(at, env);
                    if self.delivered - start >= budget {
                        return RunOutcome::HitDeliveryLimit;
                    }
                }
            }
        }
    }

    /// Run until the next event is due *at or after* `horizon` (events at
    /// exactly `horizon` stay queued), the queue drains, or a limit is hit.
    /// The lazy-injection counterpart of [`run_until`](Self::run_until): the
    /// runner drains strictly up to the next external action's instant,
    /// injects it with its reserved low sequence number, and continues.
    pub fn run_strictly_before(&mut self, horizon: SimTime) -> RunOutcome {
        let budget = self.config.max_deliveries;
        let start = self.delivered;
        loop {
            match self.profiled_pop(horizon, true) {
                PopBefore::Empty => return RunOutcome::Drained,
                PopBefore::Later => return RunOutcome::ReachedHorizon,
                PopBefore::Due(at, env) => {
                    self.deliver(at, env);
                    if self.delivered - start >= budget {
                        return RunOutcome::HitDeliveryLimit;
                    }
                }
            }
        }
    }

    /// Run a whole reserved timeline to completion: for each `(at, to, msg)`
    /// entry (which must come pre-sorted by instant, in reservation order),
    /// drain strictly up to `at`, inject the entry with its reserved low
    /// sequence number, and finally drain the rest. Equivalent to the
    /// injection loop the scenario runner used to drive externally — hoisted
    /// into the engine so a parallel implementation can keep its worker
    /// threads alive across the whole run instead of re-spawning per
    /// injection. Requires a prior [`reserve_external_seqs`] covering every
    /// entry.
    ///
    /// [`reserve_external_seqs`]: Self::reserve_external_seqs
    pub fn run_timeline(
        &mut self,
        timeline: impl IntoIterator<Item = (SimTime, NodeId, M)>,
    ) -> RunOutcome {
        for (at, to, msg) in timeline {
            // Intermediate outcomes are horizon reports, not errors; the
            // delivery budget is re-checked by the final drain.
            let _ = self.run_strictly_before(at);
            self.schedule_external_reserved(at, to, msg);
        }
        self.run_to_completion()
    }

    /// Consume the engine and return its parts (nodes + stats), used by the
    /// harness to collect per-node logs after a run.
    pub fn into_parts(self) -> (Vec<N>, TrafficStats, SimTime) {
        (self.nodes, self.stats, self.now)
    }

    /// Consume the engine, returning its parts **plus** the reusable
    /// storage arena — [`into_parts`](Self::into_parts) for callers that
    /// will build another engine next (see [`EngineArena`]).
    pub fn recycle(self) -> (Vec<N>, TrafficStats, SimTime, EngineArena<M>) {
        (
            self.nodes,
            self.stats,
            self.now,
            EngineArena {
                queue: self.queue,
                clocks: self.link_clock,
                scratch: self.scratch,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::UniformFabric;
    use crate::stats::TrafficClass;

    /// A toy message for engine tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Toy {
        Ping(u32),
        Pong(u32),
        Tick,
    }

    impl Message for Toy {
        fn traffic_class(&self) -> TrafficClass {
            match self {
                Toy::Tick => TrafficClass::Timer,
                _ => TrafficClass::EventRouting,
            }
        }
        fn kind(&self) -> &'static str {
            match self {
                Toy::Ping(_) => "ping",
                Toy::Pong(_) => "pong",
                Toy::Tick => "tick",
            }
        }
    }

    /// A node that answers pings with pongs and records what it saw.
    #[derive(Default)]
    struct Echo {
        seen: Vec<(SimTime, Toy)>,
        peer: Option<NodeId>,
        ticks: u32,
    }

    impl Node<Toy> for Echo {
        fn on_message(&mut self, env: Envelope<Toy>, ctx: &mut Context<Toy>) {
            self.seen.push((ctx.now(), env.msg.clone()));
            match env.msg {
                Toy::Ping(n) => ctx.send(env.from, Toy::Pong(n)),
                Toy::Pong(_) => {}
                Toy::Tick => {
                    self.ticks += 1;
                    if let Some(peer) = self.peer {
                        ctx.send(peer, Toy::Ping(self.ticks));
                    }
                    if self.ticks < 3 {
                        ctx.schedule(SimDuration::from_millis(100), Toy::Tick);
                    }
                }
            }
        }
    }

    fn two_node_engine(latency_ms: u64) -> Engine<Toy, Echo> {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(latency_ms)));
        let a = Echo {
            peer: Some(NodeId(1)),
            ..Echo::default()
        };
        let b = Echo::default();
        Engine::new(vec![a, b], fabric)
    }

    #[test]
    fn ping_pong_round_trip_timing() {
        let mut eng = two_node_engine(10);
        eng.schedule_external(SimTime::from_millis(0), NodeId(0), Toy::Tick);
        let outcome = eng.run_to_completion();
        assert_eq!(outcome, RunOutcome::Drained);
        // node 0 ticked 3 times at t=0,100,200; each tick pings node 1 (10ms)
        // which pongs back (another 10ms).
        let node1 = eng.node(NodeId(1));
        assert_eq!(node1.seen.len(), 3);
        assert_eq!(node1.seen[0].0, SimTime::from_millis(10));
        let node0 = eng.node(NodeId(0));
        let pongs: Vec<_> = node0
            .seen
            .iter()
            .filter(|(_, m)| matches!(m, Toy::Pong(_)))
            .collect();
        assert_eq!(pongs.len(), 3);
        assert_eq!(pongs[0].0, SimTime::from_millis(20));
    }

    #[test]
    fn stats_count_network_messages_but_not_timers() {
        let mut eng = two_node_engine(10);
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        eng.run_to_completion();
        let stats = eng.stats();
        assert_eq!(stats.kind("ping").messages, 3);
        assert_eq!(stats.kind("pong").messages, 3);
        assert_eq!(stats.class(TrafficClass::EventRouting).hops, 6);
        // The three self-scheduled ticks travelled zero network hops and two
        // of them (after the injected one) are recorded as Timer class.
        assert_eq!(stats.class(TrafficClass::Timer).hops, 0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut eng = two_node_engine(10);
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        let outcome = eng.run_until(SimTime::from_millis(150));
        assert_eq!(outcome, RunOutcome::ReachedHorizon);
        assert!(eng.now() <= SimTime::from_millis(150));
        assert!(eng.pending() > 0);
        // Finishing afterwards drains the rest.
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
    }

    #[test]
    fn delivery_limit_guards_runaway() {
        // Node 0 pings node 1 forever because every pong triggers a new ping.
        struct Loopy;
        impl Node<Toy> for Loopy {
            fn on_message(&mut self, env: Envelope<Toy>, ctx: &mut Context<Toy>) {
                match env.msg {
                    Toy::Ping(n) => ctx.send(env.from, Toy::Pong(n)),
                    Toy::Pong(n) => ctx.send(env.from, Toy::Ping(n + 1)),
                    Toy::Tick => ctx.send(NodeId(1), Toy::Ping(0)),
                }
            }
        }
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(1)));
        let mut eng = Engine::new(vec![Loopy, Loopy], fabric).with_config(EngineConfig {
            max_deliveries: 1_000,
        });
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        assert_eq!(eng.run_to_completion(), RunOutcome::HitDeliveryLimit);
    }

    #[test]
    fn run_until_honours_the_delivery_limit() {
        struct Loopy;
        impl Node<Toy> for Loopy {
            fn on_message(&mut self, env: Envelope<Toy>, ctx: &mut Context<Toy>) {
                match env.msg {
                    Toy::Ping(n) => ctx.send(env.from, Toy::Pong(n)),
                    Toy::Pong(n) => ctx.send(env.from, Toy::Ping(n + 1)),
                    Toy::Tick => ctx.send(NodeId(1), Toy::Ping(0)),
                }
            }
        }
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(1)));
        let mut eng = Engine::new(vec![Loopy, Loopy], fabric).with_config(EngineConfig {
            max_deliveries: 500,
        });
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        assert_eq!(
            eng.run_until(SimTime::from_secs(3600)),
            RunOutcome::HitDeliveryLimit
        );
        assert_eq!(eng.deliveries(), 500);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng = two_node_engine(1);
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        eng.run_to_completion();
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
    }

    #[test]
    fn fifo_per_link_holds_for_bursts() {
        // Node 0 sends 100 pings to node 1 back-to-back; they must arrive in
        // send order.
        struct Burst;
        impl Node<Toy> for Burst {
            fn on_message(&mut self, env: Envelope<Toy>, ctx: &mut Context<Toy>) {
                if let Toy::Tick = env.msg {
                    for i in 0..100 {
                        ctx.send(NodeId(1), Toy::Ping(i));
                    }
                }
            }
        }
        struct Sink {
            got: Vec<u32>,
        }
        impl Node<Toy> for Sink {
            fn on_message(&mut self, env: Envelope<Toy>, _ctx: &mut Context<Toy>) {
                if let Toy::Ping(i) = env.msg {
                    self.got.push(i);
                }
            }
        }
        enum Either {
            B(Burst),
            S(Sink),
        }
        impl Node<Toy> for Either {
            fn on_message(&mut self, env: Envelope<Toy>, ctx: &mut Context<Toy>) {
                match self {
                    Either::B(b) => b.on_message(env, ctx),
                    Either::S(s) => s.on_message(env, ctx),
                }
            }
        }
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(7)));
        let mut eng = Engine::new(
            vec![Either::B(Burst), Either::S(Sink { got: Vec::new() })],
            fabric,
        );
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        eng.run_to_completion();
        match eng.node(NodeId(1)) {
            Either::S(s) => assert_eq!(s.got, (0..100).collect::<Vec<_>>()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn fifo_per_link_holds_under_jitter() {
        use crate::fabric::{JitteredFabric, LinkModel};
        // Node 0 bursts 200 pings to node 1 over a heavily jittered link;
        // the channel clocks must keep them in send order even when a later
        // ping samples a much smaller latency.
        struct Burst;
        impl Node<Toy> for Burst {
            fn on_message(&mut self, env: Envelope<Toy>, ctx: &mut Context<Toy>) {
                if let Toy::Tick = env.msg {
                    for i in 0..200 {
                        ctx.send(NodeId(1), Toy::Ping(i));
                    }
                }
            }
        }
        struct Sink {
            got: Vec<u32>,
        }
        impl Node<Toy> for Sink {
            fn on_message(&mut self, env: Envelope<Toy>, _ctx: &mut Context<Toy>) {
                if let Toy::Ping(i) = env.msg {
                    self.got.push(i);
                }
            }
        }
        enum Either {
            B(Burst),
            S(Sink),
        }
        impl Node<Toy> for Either {
            fn on_message(&mut self, env: Envelope<Toy>, ctx: &mut Context<Toy>) {
                match self {
                    Either::B(b) => b.on_message(env, ctx),
                    Either::S(s) => s.on_message(env, ctx),
                }
            }
        }
        for seed in 0..8u64 {
            let model = LinkModel {
                seed,
                jitter: SimDuration::from_millis(50),
                asymmetry: 0.3,
                degraded: Vec::new(),
            };
            let fabric = Arc::new(JitteredFabric::new(
                UniformFabric::new(SimDuration::from_millis(2)),
                model,
            ));
            let mut eng = Engine::new(
                vec![Either::B(Burst), Either::S(Sink { got: Vec::new() })],
                fabric,
            );
            eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
            eng.run_to_completion();
            match eng.node(NodeId(1)) {
                Either::S(s) => assert_eq!(
                    s.got,
                    (0..200).collect::<Vec<_>>(),
                    "seed {seed}: jitter reordered a link"
                ),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn external_injection_preserves_order_at_same_time() {
        struct Sink {
            got: Vec<u32>,
        }
        impl Node<Toy> for Sink {
            fn on_message(&mut self, env: Envelope<Toy>, _ctx: &mut Context<Toy>) {
                if let Toy::Ping(i) = env.msg {
                    self.got.push(i);
                }
            }
        }
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(1)));
        let mut eng = Engine::new(vec![Sink { got: Vec::new() }], fabric);
        for i in 0..50 {
            eng.schedule_external(SimTime::from_millis(5), NodeId(0), Toy::Ping(i));
        }
        eng.run_to_completion();
        assert_eq!(eng.node(NodeId(0)).got, (0..50).collect::<Vec<_>>());
    }

    /// A crash window must silence the node for exactly the window: pings
    /// delivered inside it are dropped (and recorded), pings before and
    /// after go through, and the node never reacts to a dropped message.
    #[test]
    fn crash_window_drops_and_records_deliveries() {
        use crate::faults::FaultSchedule;
        let mut eng = two_node_engine(10);
        eng.set_faults(Arc::new(FaultSchedule::new().crash(
            NodeId(1),
            SimTime::from_millis(105),
            SimTime::from_millis(205),
        )));
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        // Ticks at 0/100/200 ping node 1 at 10/110/210; the middle one dies.
        let node1 = eng.node(NodeId(1));
        let seen: Vec<SimTime> = node1.seen.iter().map(|(at, _)| *at).collect();
        assert_eq!(
            seen,
            vec![SimTime::from_millis(10), SimTime::from_millis(210)]
        );
        // The drop is on the record, attributed to window 0.
        assert_eq!(eng.drops().len(), 1);
        let drop = &eng.drops()[0];
        assert_eq!(drop.at, SimTime::from_millis(110));
        assert_eq!((drop.from, drop.to), (NodeId(0), NodeId(1)));
        assert_eq!(drop.kind, "ping");
        assert_eq!(drop.cause, DropCause::Fault(0));
        // Dropped envelopes are not deliveries: only 2 pings answered.
        let node0 = eng.node(NodeId(0));
        let pongs = node0
            .seen
            .iter()
            .filter(|(_, m)| matches!(m, Toy::Pong(_)))
            .count();
        assert_eq!(pongs, 2, "the crashed node must not answer");
    }

    /// Installing an empty schedule must keep the zero-fault fast path: the
    /// run is byte-identical to one with no schedule at all.
    #[test]
    fn empty_schedule_is_the_fast_path() {
        use crate::faults::FaultSchedule;
        let run = |faulted: bool| {
            let mut eng = two_node_engine(10);
            if faulted {
                eng.set_faults(Arc::new(FaultSchedule::new()));
            }
            eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
            eng.run_to_completion();
            assert!(eng.faults().is_none(), "empty schedules are not installed");
            (
                eng.node(NodeId(0)).seen.clone(),
                eng.node(NodeId(1)).seen.clone(),
                eng.deliveries(),
                format!("{:?}", eng.stats()),
            )
        };
        assert_eq!(run(false), run(true));
    }

    /// Installing a lossless model must keep the zero-loss fast path: the
    /// run is byte-identical to one with no model at all.
    #[test]
    fn lossless_model_is_the_fast_path() {
        let run = |lossy: bool| {
            let mut eng = two_node_engine(10);
            if lossy {
                eng.set_loss(LossModel::new(99, 0.0, 0.0));
            }
            eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
            eng.run_to_completion();
            assert!(eng.loss().is_none(), "lossless models are not installed");
            (
                eng.node(NodeId(0)).seen.clone(),
                eng.node(NodeId(1)).seen.clone(),
                eng.deliveries(),
                format!("{:?}", eng.stats()),
            )
        };
        assert_eq!(run(false), run(true));
    }

    /// A lossy model drops some messages, records every drop with its cause,
    /// keeps timers exempt, and replays byte-identically for the same seed.
    #[test]
    fn lossy_links_drop_record_and_replay_identically() {
        let run = |seed: u64| {
            let mut eng = two_node_engine(10);
            eng.set_loss(LossModel::new(seed, 0.4, 0.2));
            eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
            assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
            (
                eng.node(NodeId(0)).seen.clone(),
                eng.node(NodeId(1)).seen.clone(),
                eng.drops().to_vec(),
                eng.deliveries(),
            )
        };
        // Find a seed whose fates include both losses and corruptions so the
        // assertions below are not vacuous (the scan is deterministic).
        let (seed, drops) = (0..64u64)
            .map(|s| (s, run(s).2))
            .find(|(_, d)| {
                d.iter().any(|r| r.cause == DropCause::Loss)
                    && d.iter().any(|r| r.cause == DropCause::Corruption)
            })
            .expect("some seed in 0..64 loses and corrupts at 40%/20% rates");
        for d in &drops {
            assert!(matches!(d.cause, DropCause::Loss | DropCause::Corruption));
            assert_ne!(d.from, d.to, "timers and self-sends are exempt");
            assert_ne!(d.kind, "tick");
        }
        // The three self-scheduled ticks always run: loss only covers links.
        let (seen0, _, _, _) = run(seed);
        let ticks = seen0.iter().filter(|(_, m)| matches!(m, Toy::Tick)).count();
        assert_eq!(ticks, 3);
        assert_eq!(run(seed), run(seed), "seeded lossy runs replay");
    }

    /// Loss, fault windows and corruption attribute drops in the documented
    /// precedence order: lost messages never reach the node (loss wins),
    /// corrupted messages do arrive and die at the crashed node (fault wins).
    #[test]
    fn drop_cause_precedence_is_loss_fault_corruption() {
        use crate::faults::FaultSchedule;
        // Crash node 1 for the whole run, lose everything on the wire: all
        // drops must be attributed to loss.
        let mut eng = two_node_engine(10);
        eng.set_faults(Arc::new(FaultSchedule::new().crash(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_secs(3600),
        )));
        eng.set_loss(LossModel::new(1, 1.0, 0.0));
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        eng.run_to_completion();
        let ping_drops: Vec<_> = eng.drops().iter().filter(|d| d.kind == "ping").collect();
        assert!(!ping_drops.is_empty());
        assert!(ping_drops.iter().all(|d| d.cause == DropCause::Loss));

        // Corrupt everything instead: the crashed destination wins.
        let mut eng = two_node_engine(10);
        eng.set_faults(Arc::new(FaultSchedule::new().crash(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_secs(3600),
        )));
        eng.set_loss(LossModel::new(1, 0.0, 1.0));
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        eng.run_to_completion();
        let ping_drops: Vec<_> = eng.drops().iter().filter(|d| d.kind == "ping").collect();
        assert!(!ping_drops.is_empty());
        assert!(
            ping_drops.iter().all(|d| d.cause == DropCause::Fault(0)),
            "a corrupted message still arrives, and dies at the crashed node"
        );
    }

    /// Lazy injection with reserved sequence numbers must replay the exact
    /// delivery order of eager upfront injection, even when an internal
    /// event is due at the same instant as a later external one.
    #[test]
    fn reserved_lazy_injection_matches_eager_injection() {
        // Node 0 pings node 1 on every tick; externals land at instants that
        // collide with in-flight pongs (latency 10ms, ticks every 20ms).
        let timeline: Vec<(SimTime, Toy)> = (0..20u64)
            .map(|i| (SimTime::from_millis(i * 20), Toy::Tick))
            .collect();
        let run_eager = || {
            let mut eng = two_node_engine(10);
            for (at, msg) in &timeline {
                eng.schedule_external(*at, NodeId(0), msg.clone());
            }
            eng.run_to_completion();
            (
                eng.node(NodeId(0)).seen.clone(),
                eng.node(NodeId(1)).seen.clone(),
            )
        };
        let run_lazy = || {
            let mut eng = two_node_engine(10);
            eng.reserve_external_seqs(timeline.len() as u64);
            for (at, msg) in &timeline {
                eng.run_strictly_before(*at);
                eng.schedule_external_reserved(*at, NodeId(0), msg.clone());
            }
            eng.run_to_completion();
            (
                eng.node(NodeId(0)).seen.clone(),
                eng.node(NodeId(1)).seen.clone(),
            )
        };
        let (e0, e1) = run_eager();
        let (l0, l1) = run_lazy();
        assert_eq!(e0, l0);
        assert_eq!(e1, l1);
    }

    /// Steady-state traffic must stop growing engine storage: after a
    /// warm-up burst, further identical bursts leave the allocation counter
    /// untouched while deliveries keep climbing.
    #[test]
    fn steady_state_stops_allocating() {
        let mut eng = two_node_engine(5);
        eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
        eng.run_to_completion();
        let warmed = eng.perf();
        assert!(warmed.alloc_events > 0, "warm-up must have allocated");
        // Re-run the identical ping/pong cycle many times over.
        for round in 1..=20u64 {
            let at = SimTime::from_secs(round * 10);
            eng.node_mut(NodeId(0)).ticks = 0;
            eng.schedule_external(at, NodeId(0), Toy::Tick);
            eng.run_to_completion();
        }
        let after = eng.perf();
        assert!(after.deliveries > warmed.deliveries * 10);
        assert_eq!(
            after.alloc_events, warmed.alloc_events,
            "steady-state deliveries must not grow any engine storage"
        );
        assert!(after.peak_queue_depth >= 1);
    }

    /// `run_timeline` must replay the exact behaviour of the external
    /// drain-inject-drain loop it replaces.
    #[test]
    fn run_timeline_matches_manual_injection_loop() {
        let timeline: Vec<(SimTime, NodeId, Toy)> = (0..20u64)
            .map(|i| (SimTime::from_millis(i * 20), NodeId(0), Toy::Tick))
            .collect();
        let run_manual = || {
            let mut eng = two_node_engine(10);
            eng.reserve_external_seqs(timeline.len() as u64);
            for (at, to, msg) in &timeline {
                eng.run_strictly_before(*at);
                eng.schedule_external_reserved(*at, *to, msg.clone());
            }
            eng.run_to_completion();
            (
                eng.node(NodeId(0)).seen.clone(),
                eng.node(NodeId(1)).seen.clone(),
                eng.deliveries(),
            )
        };
        let run_via_timeline = || {
            let mut eng = two_node_engine(10);
            eng.reserve_external_seqs(timeline.len() as u64);
            let outcome = eng.run_timeline(timeline.iter().cloned());
            assert_eq!(outcome, RunOutcome::Drained);
            (
                eng.node(NodeId(0)).seen.clone(),
                eng.node(NodeId(1)).seen.clone(),
                eng.deliveries(),
            )
        };
        assert_eq!(run_manual(), run_via_timeline());
    }

    /// A recycled arena must make the next engine's whole run
    /// allocation-free (same workload shape), with identical results.
    #[test]
    fn arena_reuse_is_allocation_free_and_identical() {
        let run = |arena: EngineArena<Toy>| {
            let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(10)));
            let a = Echo {
                peer: Some(NodeId(1)),
                ..Echo::default()
            };
            let mut eng = Engine::new_in(vec![a, Echo::default()], fabric, arena);
            eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
            eng.run_to_completion();
            let perf = eng.perf();
            let (nodes, stats, _, arena) = eng.recycle();
            (nodes[1].seen.clone(), format!("{stats:?}"), perf, arena)
        };
        let (seen1, stats1, perf1, arena) = run(EngineArena::new());
        assert!(perf1.alloc_events > 0, "cold arena must warm up");
        let (seen2, stats2, perf2, arena) = run(arena);
        assert_eq!(seen1, seen2, "arena reuse must not change results");
        assert_eq!(stats1, stats2);
        assert_eq!(perf2.alloc_events, 0, "warmed arena must not allocate");
        assert_eq!(perf1.deliveries, perf2.deliveries);
        let (_, _, perf3, _) = run(arena);
        assert_eq!(perf3.alloc_events, 0);
    }

    /// Phase profiling accounts every hot-path phase and never changes
    /// results.
    #[test]
    fn phase_profile_accumulates_and_preserves_results() {
        let run = |profiled: bool| {
            let mut eng = two_node_engine(10);
            if profiled {
                eng.enable_phase_profile();
            }
            eng.schedule_external(SimTime::ZERO, NodeId(0), Toy::Tick);
            eng.run_to_completion();
            (
                eng.node(NodeId(1)).seen.clone(),
                eng.deliveries(),
                eng.phase_breakdown(),
            )
        };
        let (seen_off, del_off, bd_off) = run(false);
        let (seen_on, del_on, bd_on) = run(true);
        assert_eq!(bd_off, None);
        assert_eq!(seen_off, seen_on);
        assert_eq!(del_off, del_on);
        let bd = bd_on.expect("profiling was enabled");
        assert!(bd.protocol_ns > 0, "callbacks must be accounted");
        assert!(bd.queue_ns > 0, "queue ops must be accounted");
        assert_eq!(
            bd.total_ns(),
            bd.queue_ns + bd.clocks_ns + bd.protocol_ns + bd.stats_ns
        );
    }
}
