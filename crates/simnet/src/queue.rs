//! The future-event list: a pooled, indexed 4-ary min-heap.
//!
//! The engine used to keep its future events in a
//! `BinaryHeap<Reverse<Scheduled<M>>>` of *owned* entries: every sift-up and
//! sift-down moved a full envelope (tens to hundreds of bytes once a
//! protocol message is inside), and every push/pop round-trip was an
//! allocation-sized `memcpy` chain. [`EventQueue`] separates ordering from
//! storage:
//!
//! * envelopes live in a **slab** of pooled slots that never move; freed
//!   slots are recycled through a free list, so steady-state traffic
//!   performs no allocation at all;
//! * the heap itself is a flat array of small heap-entry records — the
//!   `(at, seq)` ordering key plus a `u32` slot id — so sifting moves
//!   24-byte keys, never envelopes;
//! * the heap is **4-ary** rather than binary: half the tree depth, and the
//!   four children of a node share one cache line, which is the classic
//!   d-ary-heap trade (slightly more comparisons per level, far fewer levels
//!   and far fewer cache misses) and measurably wins once the queue holds
//!   thousands of in-flight messages.
//!
//! Ordering is the same total order the engine has always used —
//! `(at, seq)` with the globally unique send sequence breaking ties — so pop
//! order is *identical* to the old `BinaryHeap` path (asserted by the fuzz
//! tests below and the differential tests in `tests/engine_equivalence.rs`).

use crate::engine::Envelope;
use crate::time::SimTime;

/// Heap arity. Four children per node: depth log₄(n), children contiguous.
const ARITY: usize = 4;

/// One heap node: the ordering key plus the slab slot holding the envelope.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Result of [`EventQueue::pop_at_or_before`].
#[derive(Debug)]
pub enum PopBefore<M> {
    /// The queue is empty.
    Empty,
    /// The earliest event is due after the horizon; nothing was popped.
    Later,
    /// The popped event: `(delivery instant, envelope)`.
    Due(SimTime, Envelope<M>),
}

/// A pooled, indexed 4-ary min-heap of scheduled envelopes, ordered by
/// `(delivery instant, send sequence)`.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: Vec<HeapEntry>,
    /// Envelope storage; `heap` entries point into it by index. `None` slots
    /// are free (listed in `free`). Slots never move, so pushing and popping
    /// shuffles 24-byte keys only.
    slab: Vec<Option<Envelope<M>>>,
    /// Recycled slot ids, popped before the slab grows.
    free: Vec<u32>,
    /// High-water mark of the queue length (peak in-flight messages).
    peak: usize,
    /// Number of slot/heap/free-list growth events — the engine's
    /// allocations-per-delivery sanity counter reads this; in steady state
    /// it plateaus while deliveries keep climbing.
    grows: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            peak: 0,
            grows: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of [`len`](Self::len) over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Number of storage growth events (slab slots allocated + heap array
    /// regrowths). Once the pool has warmed up this stops increasing: every
    /// push reuses a recycled slot.
    pub fn alloc_events(&self) -> u64 {
        self.grows
    }

    /// The `(at, seq)` key of the earliest scheduled event, if any. O(1).
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.first().map(HeapEntry::key)
    }

    /// Schedule `env` for delivery at `at`. `seq` must be unique per queue
    /// (the engine's global send sequence), which makes the order total.
    pub fn push(&mut self, at: SimTime, seq: u64, env: Envelope<M>) {
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slab[s as usize].is_none());
                self.slab[s as usize] = Some(env);
                s
            }
            None => {
                let s = self.slab.len() as u32;
                self.slab.push(Some(env));
                self.grows += 1;
                s
            }
        };
        if self.heap.len() == self.heap.capacity() {
            self.grows += 1;
        }
        self.heap.push(HeapEntry { at, seq, slot });
        self.peak = self.peak.max(self.heap.len());
        self.sift_up(self.heap.len() - 1);
    }

    /// Pop the earliest event: `(delivery instant, envelope)`. The slot is
    /// recycled immediately.
    pub fn pop(&mut self) -> Option<(SimTime, Envelope<M>)> {
        let top = *self.heap.first()?;
        self.remove_root();
        let env = self.release(top.slot);
        Some((top.at, env))
    }

    /// Pop the earliest event only if it is due at or before `horizon` —
    /// the single-queue-access fast path of `Engine::run_until` (the old
    /// loop peeked, then popped again inside `step`).
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> PopBefore<M> {
        let Some(top) = self.heap.first().copied() else {
            return PopBefore::Empty;
        };
        if top.at > horizon {
            return PopBefore::Later;
        }
        self.remove_root();
        let env = self.release(top.slot);
        PopBefore::Due(top.at, env)
    }

    /// Pop the earliest event only if it is due *strictly before* `horizon` —
    /// the lazy-injection path of the scenario runner: the engine drains
    /// everything earlier than the next external action, then injects the
    /// action, so an internal event at exactly the action's instant (whose
    /// sequence number is necessarily larger than the action's reserved one)
    /// is popped after it.
    pub fn pop_strictly_before(&mut self, horizon: SimTime) -> PopBefore<M> {
        let Some(top) = self.heap.first().copied() else {
            return PopBefore::Empty;
        };
        if top.at >= horizon {
            return PopBefore::Later;
        }
        self.remove_root();
        let env = self.release(top.slot);
        PopBefore::Due(top.at, env)
    }

    /// Take the envelope out of a slot and recycle the slot.
    fn release(&mut self, slot: u32) -> Envelope<M> {
        let env = self.slab[slot as usize]
            .take()
            .expect("heap entry pointed at a free slot");
        if self.free.len() == self.free.capacity() {
            self.grows += 1;
        }
        self.free.push(slot);
        env
    }

    /// Remove the root heap entry, restoring the heap property.
    fn remove_root(&mut self) {
        let last = self.heap.pop().expect("remove_root on an empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let key = entry.key();
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= key {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let key = entry.key();
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            // Smallest of up to four contiguous children.
            let mut best = first_child;
            let mut best_key = self.heap[best].key();
            let end = (first_child + ARITY).min(len);
            for c in first_child + 1..end {
                let k = self.heap[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if best_key >= key {
                break;
            }
            self.heap[i] = self.heap[best];
            i = best;
        }
        self.heap[i] = entry;
    }

    /// Rewrite every scheduled entry's sequence number through `f`, in
    /// place, without re-heapifying.
    ///
    /// **Caller contract:** `f` must be order-preserving over the keys
    /// actually present — for any two entries, `(at_a, f(seq_a)) <
    /// (at_b, f(seq_b))` iff `(at_a, seq_a) < (at_b, seq_b)`. The parallel
    /// engine satisfies this when it resolves provisional sequence numbers
    /// to their final global values at a window barrier: provisional
    /// numbers sort after all final ones and are assigned final values in
    /// ascending provisional order, so the relabeling is order-isomorphic
    /// and the heap arrangement stays valid untouched. Checked by
    /// `assert_invariants` in tests.
    pub fn remap_seqs(&mut self, mut f: impl FnMut(u64) -> u64) {
        for e in &mut self.heap {
            e.seq = f(e.seq);
        }
    }

    /// Drop any remaining events and reset the lifetime counters, keeping
    /// the slab, free-list, and heap capacity — the arena-reuse path. A
    /// reset queue reports zero [`alloc_events`](Self::alloc_events) until
    /// traffic outgrows the warmed pool.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.free.clear();
        for (i, slot) in self.slab.iter_mut().enumerate() {
            *slot = None;
            self.free.push(i as u32);
        }
        self.peak = 0;
        self.grows = 0;
    }

    /// Check the heap invariant (every parent ≤ each of its children) and
    /// the slab/free-list bookkeeping. Test-only; O(n).
    #[cfg(test)]
    fn assert_invariants(&self) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / ARITY;
            assert!(
                self.heap[parent].key() <= self.heap[i].key(),
                "heap violation at {i}: parent {:?} > child {:?}",
                self.heap[parent].key(),
                self.heap[i].key()
            );
        }
        let live = self.slab.iter().filter(|s| s.is_some()).count();
        assert_eq!(live, self.heap.len(), "live slots != heap entries");
        assert_eq!(
            self.free.len() + live,
            self.slab.len(),
            "free list + live slots != slab size"
        );
        for e in &self.heap {
            assert!(self.slab[e.slot as usize].is_some());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::random::DetRng;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn env(tag: u64) -> Envelope<u64> {
        Envelope {
            from: NodeId(0),
            to: NodeId(1),
            sent_at: SimTime::ZERO,
            fate: crate::faults::LinkFate::Intact,
            msg: tag,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 2, env(2));
        q.push(SimTime::from_millis(1), 1, env(1));
        q.push(SimTime::from_millis(5), 0, env(0));
        q.push(SimTime::from_millis(3), 3, env(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e.msg).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_at_or_before_respects_the_horizon() {
        let mut q = EventQueue::new();
        assert!(matches!(
            q.pop_at_or_before(SimTime::from_secs(99)),
            PopBefore::Empty
        ));
        q.push(SimTime::from_millis(10), 0, env(0));
        assert!(matches!(
            q.pop_at_or_before(SimTime::from_millis(9)),
            PopBefore::Later
        ));
        assert_eq!(q.len(), 1, "a Later answer must not pop");
        match q.pop_at_or_before(SimTime::from_millis(10)) {
            PopBefore::Due(at, e) => {
                assert_eq!(at, SimTime::from_millis(10));
                assert_eq!(e.msg, 0);
            }
            other => panic!("expected Due, got {other:?}"),
        }
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_recycled_after_warmup() {
        let mut q = EventQueue::new();
        for i in 0..64 {
            q.push(SimTime::from_micros(i), i, env(i));
        }
        while q.pop().is_some() {}
        let warmed = q.alloc_events();
        // A steady-state churn of ≤64 in flight must not grow anything.
        for round in 0..100u64 {
            for i in 0..64 {
                let seq = 64 + round * 64 + i;
                q.push(SimTime::from_micros(seq), seq, env(seq));
            }
            while q.pop().is_some() {}
        }
        assert_eq!(q.alloc_events(), warmed, "steady state must not allocate");
        assert_eq!(q.peak_len(), 64);
    }

    /// Random push/pop interleavings against a `BinaryHeap` oracle: the pop
    /// sequence must be identical, and the heap invariant must hold after
    /// every operation. This is the fuzz half of the determinism argument —
    /// the old engine's `BinaryHeap<Reverse<Scheduled>>` and this queue
    /// implement the same total order.
    #[test]
    fn fuzz_against_binary_heap_oracle() {
        for seed in 0..16u64 {
            let mut rng = DetRng::new(0xF0F0 ^ seed);
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut oracle: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for _ in 0..2_000 {
                // Bias toward pushes so the queue grows and shrinks in waves.
                if oracle.is_empty() || rng.next_f64() < 0.6 {
                    let at = SimTime::from_micros(rng.next_below(500));
                    q.push(at, seq, env(seq));
                    oracle.push(Reverse((at, seq)));
                    seq += 1;
                } else {
                    let Reverse((want_at, want_seq)) = oracle.pop().unwrap();
                    let (got_at, got_env) = q.pop().expect("oracle says non-empty");
                    assert_eq!((got_at, got_env.msg), (want_at, want_seq), "seed {seed}");
                }
                q.assert_invariants();
            }
            // Drain both; tails must agree too.
            while let Some(Reverse((want_at, want_seq))) = oracle.pop() {
                let (got_at, got_env) = q.pop().unwrap();
                assert_eq!((got_at, got_env.msg), (want_at, want_seq), "seed {seed}");
            }
            assert!(q.pop().is_none());
            q.assert_invariants();
        }
    }

    /// `pop_at_or_before` fuzz: interleave horizon pops with pushes and
    /// check against the oracle's peek.
    #[test]
    fn fuzz_horizon_pops_against_oracle() {
        for seed in 0..8u64 {
            let mut rng = DetRng::new(0xBEEF ^ seed);
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut oracle: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for _ in 0..2_000 {
                if oracle.is_empty() || rng.next_f64() < 0.5 {
                    let at = SimTime::from_micros(rng.next_below(300));
                    q.push(at, seq, env(seq));
                    oracle.push(Reverse((at, seq)));
                    seq += 1;
                } else {
                    let horizon = SimTime::from_micros(rng.next_below(300));
                    match q.pop_at_or_before(horizon) {
                        PopBefore::Empty => assert!(oracle.is_empty()),
                        PopBefore::Later => {
                            let &Reverse((at, _)) = oracle.peek().unwrap();
                            assert!(at > horizon, "seed {seed}");
                        }
                        PopBefore::Due(at, e) => {
                            let Reverse((want_at, want_seq)) = oracle.pop().unwrap();
                            assert!(at <= horizon);
                            assert_eq!((at, e.msg), (want_at, want_seq), "seed {seed}");
                        }
                    }
                }
                q.assert_invariants();
            }
        }
    }

    #[test]
    fn reset_recycles_storage_and_zeroes_counters() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_micros(i), i, env(i));
        }
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.alloc_events(), 0);
        assert_eq!(q.peak_len(), 0);
        q.assert_invariants();
        // The warmed pool absorbs the same load without allocating.
        for i in 0..100 {
            q.push(SimTime::from_micros(i), 1000 + i, env(i));
        }
        assert_eq!(q.alloc_events(), 0, "reset pool must be reused");
        q.assert_invariants();
        while q.pop().is_some() {}
    }

    /// An order-preserving seq relabeling keeps the heap valid and the pop
    /// order equal to relabeling the would-be pop sequence directly.
    #[test]
    fn remap_seqs_preserves_heap_order() {
        let mut rng = DetRng::new(0x5E9);
        let mut q: EventQueue<u64> = EventQueue::new();
        const PROV: u64 = 1 << 63;
        // True seqs 0..50 mixed with provisional seqs PROV..PROV+50 at
        // overlapping instants (provisional sort after true at equal `at`,
        // as in the parallel engine).
        for i in 0..50u64 {
            q.push(SimTime::from_micros(rng.next_below(20)), i, env(i));
            q.push(
                SimTime::from_micros(rng.next_below(20)),
                PROV | i,
                env(PROV | i),
            );
        }
        // Resolve provisional i -> 50 + i (ascending in provisional order,
        // all above the true range): order-isomorphic.
        q.remap_seqs(|s| if s & PROV != 0 { 50 + (s & !PROV) } else { s });
        q.assert_invariants();
        let mut last = None;
        while let Some((at, e)) = q.pop() {
            let seq = if e.msg & PROV != 0 {
                50 + (e.msg & !PROV)
            } else {
                e.msg
            };
            let key = (at, seq);
            if let Some(prev) = last {
                assert!(prev < key, "pop order broke after remap");
            }
            last = Some(key);
        }
    }
}
