//! Sharded conservative-parallel engine with exact serial equivalence.
//!
//! [`ParallelEngine`] partitions the node set across K shards (see
//! [`Partition`]) and runs each shard's own
//! pooled [`EventQueue`] on its own worker thread, synchronising at
//! *window barriers*. The design is conservative parallel discrete-event
//! simulation (null-message-free, barrier-windowed), with one twist: the
//! merged run is **byte-identical** to the serial [`Engine`] — same seed,
//! same delivery order, same traffic statistics, same drop log — which the
//! differential suite `tests/parallel_equivalence.rs` asserts cell by cell.
//!
//! # Windows and lookahead
//!
//! The fabric promises a *latency floor* (see
//! [`Fabric::latency_floor`]): every
//! message between distinct nodes takes at least `L`. A window starts at
//! `t_next` (the earliest pending event anywhere) and spans `[t_next,
//! t_next + L)`. Any message emitted inside the window at instant `t ≥
//! t_next` arrives cross-shard no earlier than `t + L ≥ t_next + L` — past
//! the window's end — so shards can process their own `[t_next, t_next+L)`
//! events with **no** incoming cross-shard traffic to fear. The per-link
//! FIFO clamp only ever moves arrivals later, and timers are intra-node,
//! so neither breaks the bound. A zero floor (or a one-shard partition)
//! degrades to a single shard running whole-horizon windows: correct,
//! just not parallel.
//!
//! ## Adaptive windows
//!
//! Fixed `L`-wide windows burn one barrier per lookahead span even when the
//! run is quiescent (one shard draining a long stretch of local timers and
//! intra-shard traffic). The engine therefore grows the window after quiet
//! barriers: a barrier that routed **zero** cross-shard envelopes doubles a
//! growth factor `G` (capped at 64), any routed envelope resets it to 1,
//! and the next window may span `G·L` — but only when exactly **one**
//! shard has pending events below the grown end. That guard is what keeps
//! the merged run byte-identical to the serial engine: with a single
//! active shard, the window's delivery set is a contiguous prefix of the
//! serial schedule (no other shard has anything to deliver in the span),
//! and the active shard *self-clamps* its window to `first cross-shard
//! emission + L` the moment it parks an envelope — everything it parks
//! afterwards arrives at or past the clamped end, so no shard ever
//! processes past an in-flight arrival. With `G = 1`, or whenever two or
//! more shards are active below the grown end, the window is the classic
//! uniform `[t_next, t_next + L)`.
//!
//! # Exact sequence reconstruction
//!
//! The serial engine's total delivery order is `(at, seq)` with `seq` the
//! global send sequence assigned *at emission, in delivery order*. Shards
//! cannot know global sequence numbers mid-window, so emissions carry
//! **provisional keys** — `PROV_BIT | shard | window-local counter` — that
//! sort after every true sequence number and, within a shard, in emission
//! order. At the barrier the per-shard delivery logs (each sorted by
//! `(at, key)`, because pop order is sorted and a delivery's provisional
//! key resolves monotonically) are k-way merged by `(at, resolved key)`,
//! which reconstructs the exact serial pop order; each merged delivery is
//! assigned the next true sequence numbers for its emissions, exactly as
//! the serial engine would have. Queued events, cross-shard handoffs and
//! drop records are then relabelled through the resulting map — an
//! order-isomorphic rewrite, so the shard heaps stay valid in place
//! ([`EventQueue::remap_seqs`]).
//!
//! # Threads
//!
//! Workers live in one [`std::thread::scope`] per public run call (a whole
//! [`run_timeline`](ParallelEngine::run_timeline) shares one scope), and
//! shard states ping-pong between the coordinator and the workers through
//! channels — ownership transfer, no locks on the hot path. The
//! [`with_thread_allowance`] guard bounds how many OS threads one engine
//! may use, so an outer run-level parallel sweep times an inner parallel
//! engine never oversubscribes the machine.

use std::cell::Cell;
use std::sync::{mpsc, Arc};

use crate::clocks::LinkClocks;
use crate::engine::{
    Context, Engine, EngineArena, EngineConfig, EnginePerf, Envelope, Node, Outgoing,
    PhaseBreakdown, RunOutcome,
};
use crate::fabric::Fabric;
use crate::faults::{DropCause, DropRecord, FaultSchedule, LinkFate, LossModel};
use crate::ids::NodeId;
use crate::queue::EventQueue;
use crate::stats::{Message, TrafficStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::Partition;

/// Marks a provisional (not yet globally sequenced) key. Provisional keys
/// sort after every true sequence number, mirroring the serial invariant
/// that anything emitted during a window outsequences everything already
/// queued when the window began.
const PROV_BIT: u64 = 1 << 63;
/// Bit offset of the shard id inside a provisional key (23 bits of shard
/// above 40 bits of window-local emission counter).
const PROV_SHARD_SHIFT: u32 = 40;
/// Mask of the window-local emission counter inside a provisional key.
const PROV_COUNTER_MASK: u64 = (1 << PROV_SHARD_SHIFT) - 1;

#[inline]
fn prov_shard(key: u64) -> usize {
    ((key & !PROV_BIT) >> PROV_SHARD_SHIFT) as usize
}

#[inline]
fn prov_counter(key: u64) -> usize {
    (key & PROV_COUNTER_MASK) as usize
}

/// Resolve a key through the barrier's provisional→true maps. True keys
/// pass through; provisional keys index their shard's map, which the
/// k-way merge is guaranteed to have filled (an emission's parent delivery
/// sits earlier in the same shard's log, hence merges first).
#[inline]
fn resolve_key(key: u64, maps: &[Vec<u64>]) -> u64 {
    if key & PROV_BIT == 0 {
        key
    } else {
        maps[prov_shard(key)][prov_counter(key)]
    }
}

thread_local! {
    /// Per-thread cap on how many worker threads a [`ParallelEngine`]
    /// running on this thread may use. `0` means unlimited.
    static THREAD_ALLOWANCE: Cell<usize> = const { Cell::new(0) };
}

/// Run `f` with this thread's parallel-engine thread allowance set to
/// `limit` (`0` = unlimited), restoring the previous allowance afterwards
/// (panic-safe). Nested parallelism budget: a sweep running W run-level
/// workers hands each worker an allowance of `total / W`, so `sweep × `
/// [`ParallelEngine`] never oversubscribes the machine.
pub fn with_thread_allowance<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_ALLOWANCE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_ALLOWANCE.with(|c| c.replace(limit));
    let _guard = Restore(prev);
    f()
}

/// The [`with_thread_allowance`] budget currently in force on the calling
/// thread (`0` = unlimited). Mostly useful for executors and tests asserting
/// that nested-parallelism budgets actually reach the worker closures.
pub fn thread_allowance() -> usize {
    THREAD_ALLOWANCE.with(Cell::get)
}

/// Cap on the adaptive window growth factor: a fully quiet run's windows
/// stop growing at 64 lookahead spans, bounding how far a single window
/// can speculate past the point where traffic resumes.
const MAX_WINDOW_GROWTH: u64 = 64;

/// Where a shard's window stops.
#[derive(Debug, Clone, Copy)]
enum WindowEnd {
    /// Drain everything (single-shard completion run).
    Unbounded,
    /// Deliver events with `at <= end` (clipped `run_until` final window).
    Inclusive(SimTime),
    /// Deliver events with `at < end` (interior windows, strict horizons).
    Exclusive(SimTime),
}

/// What bounds the whole run, mirroring the serial `run_*` family.
#[derive(Debug, Clone, Copy)]
enum Limit {
    Completion,
    Until(SimTime),
    StrictlyBefore(SimTime),
}

/// One delivery as logged for the barrier merge: its instant, its queue
/// key (true or provisional), and how many sequence numbers its outbox
/// consumed.
#[derive(Debug, Clone, Copy)]
struct DeliveryRec {
    at: SimTime,
    key: u64,
    emits: u32,
}

/// A cross-shard envelope parked until the next barrier.
type Handoff<M> = (SimTime, u64, Envelope<M>);

/// Everything one shard needs to run a window on its own thread.
struct ShardState<M, N> {
    id: u32,
    /// This shard's nodes, in ascending global id order.
    nodes: Vec<N>,
    shard_of: Arc<Vec<u32>>,
    local_of: Arc<Vec<u32>>,
    fabric: Arc<dyn Fabric>,
    faults: Option<Arc<FaultSchedule>>,
    loss: Option<LossModel>,
    queue: EventQueue<M>,
    /// Channel clocks for links *originating* in this shard. Every send on
    /// an ordered link is performed by its `from` node, which lives in
    /// exactly one shard, so per-link clocks and send counters partition
    /// cleanly — the jitter key stream is identical to the serial engine's.
    link_clock: LinkClocks,
    stats: TrafficStats,
    scratch: Vec<Outgoing<M>>,
    scratch_cap: usize,
    scratch_grows: u64,
    /// Window-local delivery log, in pop order (sorted by `(at, key)`).
    log: Vec<DeliveryRec>,
    /// Window-local fault drops with their queue keys, in pop order.
    drops_log: Vec<(SimTime, u64, DropRecord)>,
    /// Per-destination-shard handoff buffers, exchanged at the barrier.
    outbound: Vec<Vec<Handoff<M>>>,
    /// Window-local provisional emission counter (resets each barrier).
    prov_next: u64,
    now: SimTime,
    delivered: u64,
    windows_active: u64,
    handoffs: u64,
    /// Fabric lookahead, mirrored here so the grown-window self-clamp can
    /// compute `first cross-shard emission + L` without the engine.
    lookahead: SimDuration,
    /// The end bound of the window currently running. `enqueue_outgoing`
    /// tightens it when the self-clamp arms and an envelope parks, so
    /// `run_window` re-reads it every iteration.
    window_end: WindowEnd,
    /// Armed for grown windows only: the first parked cross-shard envelope
    /// pulls `window_end` down to its emission time + lookahead.
    clamp_on_park: bool,
    /// Fan-out allocation units harvested from delivery contexts (see
    /// [`Context::note_fanout_allocs`]).
    fanout_allocs: u64,
}

impl<M: Message, N: Node<M>> ShardState<M, N> {
    /// Run this shard up to `end`, delivering at most `cap` non-dropped
    /// messages. Returns the number delivered. When `clamp` is set (grown
    /// windows), the first parked cross-shard envelope tightens the end to
    /// its emission time + lookahead, so the bound is re-read every
    /// iteration.
    fn run_window(&mut self, end: WindowEnd, clamp: bool, cap: u64) -> u64 {
        self.window_end = end;
        self.clamp_on_park = clamp;
        let mut count = 0u64;
        let mut popped_any = false;
        while count < cap {
            let Some((at, key)) = self.queue.peek_key() else {
                break;
            };
            let due = match self.window_end {
                WindowEnd::Unbounded => true,
                WindowEnd::Inclusive(h) => at <= h,
                WindowEnd::Exclusive(h) => at < h,
            };
            if !due {
                break;
            }
            let (_, env) = self.queue.pop().expect("peeked entry must pop");
            popped_any = true;
            count += self.deliver(at, key, env);
        }
        if popped_any {
            self.windows_active += 1;
        }
        count
    }

    /// Deliver one popped event — the shard-side mirror of the serial
    /// engine's delivery path (fault verdict first, then the callback with
    /// the reused scratch outbox). Returns 1 for a delivery, 0 for a drop.
    fn deliver(&mut self, at: SimTime, key: u64, env: Envelope<M>) -> u64 {
        debug_assert!(at >= self.now, "time must be monotone per shard");
        self.now = at;
        // Mirror of the serial engine's drop-cause precedence: loss wins
        // over a fault at the destination (the message never arrived),
        // which wins over corruption (the message arrived, damaged).
        let cause = if env.fate == LinkFate::Lost {
            Some(DropCause::Loss)
        } else if let Some((window, _)) = self
            .faults
            .as_ref()
            .and_then(|f| f.verdict(env.from, env.to, at))
        {
            Some(DropCause::Fault(window))
        } else if env.fate == LinkFate::Corrupted {
            Some(DropCause::Corruption)
        } else {
            None
        };
        if let Some(cause) = cause {
            self.drops_log.push((
                at,
                key,
                DropRecord {
                    at,
                    from: env.from,
                    to: env.to,
                    kind: env.msg.kind(),
                    class: env.msg.traffic_class(),
                    cause,
                },
            ));
            return 0;
        }
        self.delivered += 1;
        self.stats.deliveries += 1;
        let to = env.to;
        let local = self.local_of[to.index()] as usize;
        let mut ctx = Context::with_outbox(at, to, std::mem::take(&mut self.scratch));
        self.nodes[local].on_message(env, &mut ctx);
        self.fanout_allocs += ctx.fanout_allocs();
        let mut out = ctx.into_outbox();
        if out.capacity() > self.scratch_cap {
            self.scratch_cap = out.capacity();
            self.scratch_grows += 1;
        }
        self.log.push(DeliveryRec {
            at,
            key,
            emits: out.len() as u32,
        });
        self.enqueue_outgoing(to, at, &mut out);
        debug_assert!(out.is_empty());
        self.scratch = out;
        1
    }

    /// Drain a delivery's outbox: every outgoing consumes one provisional
    /// key (exactly as each consumes one true sequence number serially).
    /// Sends sample the fabric keyed off the link-local send index and are
    /// FIFO-clamped by this shard's channel clocks; cross-shard envelopes
    /// park in the handoff buffer for the barrier.
    fn enqueue_outgoing(&mut self, origin: NodeId, sent_at: SimTime, out: &mut Vec<Outgoing<M>>) {
        for o in out.drain(..) {
            debug_assert!(
                self.prov_next < PROV_COUNTER_MASK,
                "window emission overflow"
            );
            let pkey = PROV_BIT | ((self.id as u64) << PROV_SHARD_SHIFT) | self.prov_next;
            self.prov_next += 1;
            match o {
                Outgoing::Send { to, msg } => {
                    let fabric = &*self.fabric;
                    let loss = self.loss;
                    let mut hops = 0;
                    let mut fate = LinkFate::Intact;
                    let at = self.link_clock.advance_send(origin, to, |link_seq| {
                        let cost = fabric.link(origin, to, sent_at, link_seq);
                        hops = cost.hops;
                        // Same send-time sampling as the serial engine: the
                        // link send index is shard-local-identical, so the
                        // fate stream is byte-identical across backends.
                        if let (Some(m), false) = (&loss, origin == to) {
                            fate = m.fate(origin, to, link_seq);
                        }
                        sent_at + cost.latency
                    });
                    let bytes = msg.wire_bytes();
                    self.stats
                        .record(msg.traffic_class(), msg.kind(), hops, bytes);
                    if bytes > 0 {
                        self.stats.record_link(origin.0, to.0, bytes);
                    }
                    let env = Envelope {
                        from: origin,
                        to,
                        sent_at,
                        fate,
                        msg,
                    };
                    let dest = self.shard_of[to.index()];
                    if dest == self.id {
                        self.queue.push(at, pkey, env);
                    } else {
                        if self.clamp_on_park {
                            // First cross-shard emission of a grown window:
                            // everything parked from here on is emitted at
                            // ≥ sent_at, so it arrives at ≥ sent_at + L —
                            // clamping the window there keeps the delivery
                            // set an exact prefix of the serial schedule.
                            self.clamp_on_park = false;
                            let bound = sent_at + self.lookahead;
                            self.window_end = match self.window_end {
                                WindowEnd::Unbounded => WindowEnd::Exclusive(bound),
                                WindowEnd::Inclusive(h) => {
                                    if bound <= h {
                                        WindowEnd::Exclusive(bound)
                                    } else {
                                        WindowEnd::Inclusive(h)
                                    }
                                }
                                WindowEnd::Exclusive(h) => WindowEnd::Exclusive(h.min(bound)),
                            };
                        }
                        self.outbound[dest as usize].push((at, pkey, env));
                        self.handoffs += 1;
                    }
                }
                Outgoing::Timer { delay, msg } => {
                    self.queue.push(
                        sent_at + delay,
                        pkey,
                        Envelope {
                            from: origin,
                            to: origin,
                            sent_at,
                            fate: LinkFate::Intact,
                            msg,
                        },
                    );
                }
            }
        }
    }
}

/// One window's worth of work shipped to a worker thread.
struct Job<M, N> {
    idx: usize,
    state: ShardState<M, N>,
    end: WindowEnd,
    clamp: bool,
    cap: u64,
}

/// The execution strategy for one public run call: run shards inline on
/// the coordinator, or ship them to a pool of scoped worker threads.
/// Shard states ping-pong by ownership; results re-slot by index, so the
/// barrier sees shards in deterministic order however threads finish.
enum Exec<M, N> {
    Inline,
    Pool {
        jobs: Vec<mpsc::Sender<Job<M, N>>>,
        results: mpsc::Receiver<(usize, ShardState<M, N>)>,
    },
}

impl<M: Message, N: Node<M>> Exec<M, N> {
    fn run_all(
        &mut self,
        shards: &mut [Option<ShardState<M, N>>],
        end: WindowEnd,
        clamp: bool,
        cap: u64,
    ) {
        match self {
            Exec::Inline => {
                for slot in shards.iter_mut() {
                    let state = slot.as_mut().expect("shard present");
                    state.run_window(end, clamp, cap);
                }
            }
            Exec::Pool { jobs, results } => {
                let k = shards.len();
                for (idx, slot) in shards.iter_mut().enumerate() {
                    let state = slot.take().expect("shard present");
                    jobs[idx % jobs.len()]
                        .send(Job {
                            idx,
                            state,
                            end,
                            clamp,
                            cap,
                        })
                        .expect("worker thread died");
                }
                for _ in 0..k {
                    let (idx, state) = results.recv().expect("worker thread died");
                    shards[idx] = Some(state);
                }
            }
        }
    }
}

/// Per-shard counters inside [`ParallelPerf`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardPerf {
    /// Nodes assigned to this shard.
    pub nodes: usize,
    /// Messages this shard delivered (including timers).
    pub deliveries: u64,
    /// High-water mark of this shard's future event list.
    pub peak_queue_depth: usize,
    /// Storage growth events in this shard's queue/clocks/scratch.
    pub alloc_events: u64,
    /// Windows in which this shard popped at least one event.
    pub windows_active: u64,
}

/// Parallel-run counters: how the windowed execution actually behaved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelPerf {
    /// Synchronisation windows executed (barriers = windows).
    pub windows: u64,
    /// Envelopes exchanged between shards at barriers.
    pub handoff_envelopes: u64,
    /// The lookahead bound in force (the fabric's latency floor).
    pub lookahead: SimDuration,
    /// Per-shard occupancy/depth counters, indexed by shard id.
    pub shards: Vec<ShardPerf>,
}

/// A sharded, windowed, conservative-parallel mirror of [`Engine`] whose
/// merged run is byte-identical to the serial engine (see module docs).
pub struct ParallelEngine<M: Message, N: Node<M>> {
    /// `Option` so shard states can be shipped to worker threads by value.
    shards: Vec<Option<ShardState<M, N>>>,
    shard_of: Arc<Vec<u32>>,
    local_of: Arc<Vec<u32>>,
    node_count: usize,
    lookahead: SimDuration,
    now: SimTime,
    /// Global true-sequence counter: advanced by external injections and
    /// by the barrier renumbering, exactly tracking the serial counter.
    seq: u64,
    external_next: u64,
    external_end: u64,
    config: EngineConfig,
    delivered: u64,
    drops: Vec<DropRecord>,
    faults: Option<Arc<FaultSchedule>>,
    loss: Option<LossModel>,
    /// Shard stats merged at the end of every public run call.
    merged_stats: TrafficStats,
    windows: u64,
    /// Adaptive window growth factor `G` (see module docs): doubled after
    /// barriers that routed zero cross-shard envelopes (capped at
    /// [`MAX_WINDOW_GROWTH`]), reset to 1 by any routed envelope.
    growth: u64,
    /// Barrier scratch: per-shard provisional→true maps, merge cursors,
    /// and the drop-merge buffer — reused so barriers stop allocating.
    prov_maps: Vec<Vec<u64>>,
    heads: Vec<usize>,
    drop_scratch: Vec<(SimTime, u64, DropRecord)>,
}

impl<M: Message + Send, N: Node<M> + Send> ParallelEngine<M, N> {
    /// Create a parallel engine over `nodes`, split per `partition`.
    ///
    /// The lookahead bound is taken from
    /// [`Fabric::latency_floor`]; a zero floor (no usable lookahead) or a
    /// one-shard partition collapses to a single shard, which still runs
    /// the windowed path but with whole-horizon windows and no handoffs.
    pub fn new(nodes: Vec<N>, fabric: Arc<dyn Fabric>, partition: &Partition) -> Self {
        assert_eq!(
            nodes.len(),
            partition.node_count(),
            "partition must cover exactly the node set"
        );
        let lookahead = fabric.latency_floor();
        let shard_count = if lookahead == SimDuration::ZERO {
            1
        } else {
            partition.shards()
        };
        assert!(
            (shard_count as u64) < (1 << (63 - PROV_SHARD_SHIFT)),
            "shard count exceeds provisional key space"
        );
        let n = nodes.len();
        let mut shard_of = vec![0u32; n];
        if shard_count > 1 {
            for (i, s) in shard_of.iter_mut().enumerate() {
                *s = partition.shard_of(i);
            }
        }
        let mut local_of = vec![0u32; n];
        let mut counts = vec![0u32; shard_count];
        for (i, l) in local_of.iter_mut().enumerate() {
            let s = shard_of[i] as usize;
            *l = counts[s];
            counts[s] += 1;
        }
        let shard_of = Arc::new(shard_of);
        let local_of = Arc::new(local_of);
        let mut shard_nodes: Vec<Vec<N>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        for (i, node) in nodes.into_iter().enumerate() {
            shard_nodes[shard_of[i] as usize].push(node);
        }
        let shards = shard_nodes
            .into_iter()
            .enumerate()
            .map(|(id, nodes)| {
                Some(ShardState {
                    id: id as u32,
                    nodes,
                    shard_of: Arc::clone(&shard_of),
                    local_of: Arc::clone(&local_of),
                    fabric: Arc::clone(&fabric),
                    faults: None,
                    loss: None,
                    queue: EventQueue::new(),
                    // A lone shard sees every link and behaves exactly like
                    // the serial engine's table; multi-shard runs use the
                    // sharded map so K dense tables don't multiply memory.
                    link_clock: if shard_count == 1 {
                        LinkClocks::new(n)
                    } else {
                        LinkClocks::sharded()
                    },
                    stats: TrafficStats::new(),
                    scratch: Vec::new(),
                    scratch_cap: 0,
                    scratch_grows: 0,
                    log: Vec::new(),
                    drops_log: Vec::new(),
                    outbound: (0..shard_count).map(|_| Vec::new()).collect(),
                    prov_next: 0,
                    now: SimTime::ZERO,
                    delivered: 0,
                    windows_active: 0,
                    handoffs: 0,
                    lookahead,
                    window_end: WindowEnd::Unbounded,
                    clamp_on_park: false,
                    fanout_allocs: 0,
                })
            })
            .collect();
        ParallelEngine {
            shards,
            shard_of,
            local_of,
            node_count: n,
            lookahead,
            now: SimTime::ZERO,
            seq: 0,
            external_next: 0,
            external_end: 0,
            config: EngineConfig::default(),
            delivered: 0,
            drops: Vec::new(),
            faults: None,
            loss: None,
            merged_stats: TrafficStats::new(),
            windows: 0,
            growth: 1,
            prov_maps: Vec::new(),
            heads: Vec::new(),
            drop_scratch: Vec::new(),
        }
    }

    /// Replace the default configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Current simulation time (the latest delivered instant anywhere).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of shards actually in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Immutable access to a node by its global id.
    pub fn node(&self, id: NodeId) -> &N {
        let shard = self.shard_of[id.index()] as usize;
        let local = self.local_of[id.index()] as usize;
        &self.shards[shard].as_ref().expect("shard present").nodes[local]
    }

    /// Mutable access to a node by its global id.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        let shard = self.shard_of[id.index()] as usize;
        let local = self.local_of[id.index()] as usize;
        &mut self.shards[shard].as_mut().expect("shard present").nodes[local]
    }

    /// Iterate over all nodes in global id order.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        (0..self.node_count).map(move |i| self.node(NodeId(i as u32)))
    }

    /// Traffic statistics, merged across shards at the end of every public
    /// run call (content-keyed, so totals equal the serial engine's).
    pub fn stats(&self) -> &TrafficStats {
        &self.merged_stats
    }

    /// Number of messages delivered so far (including timers).
    pub fn deliveries(&self) -> u64 {
        self.delivered
    }

    /// Messages waiting across all shard queues.
    pub fn pending(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.as_ref().expect("shard present").queue.len())
            .sum()
    }

    /// Engine-level performance counters. `peak_queue_depth` sums the
    /// per-shard peaks — an upper bound on the global in-flight peak
    /// (shards peak at different instants), reported this way so the
    /// allocation accounting stays exact.
    pub fn perf(&self) -> EnginePerf {
        let mut perf = EnginePerf {
            deliveries: self.delivered,
            ..EnginePerf::default()
        };
        for s in &self.shards {
            let s = s.as_ref().expect("shard present");
            perf.peak_queue_depth += s.queue.peak_len();
            perf.alloc_events +=
                s.queue.alloc_events() + s.link_clock.alloc_events() + s.scratch_grows;
            perf.fanout_allocs += s.fanout_allocs;
        }
        perf
    }

    /// Parallel-execution counters: windows, barrier handoffs, per-shard
    /// depth and occupancy.
    pub fn parallel_perf(&self) -> ParallelPerf {
        ParallelPerf {
            windows: self.windows,
            handoff_envelopes: self
                .shards
                .iter()
                .map(|s| s.as_ref().expect("shard present").handoffs)
                .sum(),
            lookahead: self.lookahead,
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let s = s.as_ref().expect("shard present");
                    ShardPerf {
                        nodes: s.nodes.len(),
                        deliveries: s.delivered,
                        peak_queue_depth: s.queue.peak_len(),
                        alloc_events: s.queue.alloc_events()
                            + s.link_clock.alloc_events()
                            + s.scratch_grows,
                        windows_active: s.windows_active,
                    }
                })
                .collect(),
        }
    }

    /// Install a fault schedule on every shard. Like the serial engine, an
    /// empty schedule is not installed at all, keeping the zero-fault path
    /// identical to a faultless run. Fault verdicts are pure functions of
    /// `(from, to, at)`, so shard-local evaluation equals serial order.
    pub fn set_faults(&mut self, schedule: Arc<FaultSchedule>) {
        let installed = (!schedule.is_empty()).then_some(schedule);
        for s in &mut self.shards {
            s.as_mut().expect("shard present").faults = installed.clone();
        }
        self.faults = installed;
    }

    /// The fault schedule in effect, if a non-empty one was installed.
    pub fn faults(&self) -> Option<&FaultSchedule> {
        self.faults.as_deref()
    }

    /// Install a loss model on every shard — see [`Engine::set_loss`]. A
    /// lossless model is not installed, keeping the zero-loss fast path.
    /// Fates are pure functions of `(seed, from, to, link_seq)` and the
    /// link send index is shard-local-identical, so shard-local sampling
    /// equals the serial fate stream.
    pub fn set_loss(&mut self, model: LossModel) {
        let installed = (!model.is_lossless()).then_some(model);
        for s in &mut self.shards {
            s.as_mut().expect("shard present").loss = installed;
        }
        self.loss = installed;
    }

    /// The loss model in effect, if a lossy one was installed.
    pub fn loss(&self) -> Option<&LossModel> {
        self.loss.as_ref()
    }

    /// Every envelope dropped by the fault plan or the loss model, in
    /// serial delivery order (merged and ordered at each barrier).
    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    /// Inject a message from the outside world, exactly like
    /// [`Engine::schedule_external`]: it draws the next true sequence
    /// number and lands directly in the destination node's shard queue.
    pub fn schedule_external(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.seq;
        self.seq += 1;
        self.push_external(at, seq, to, msg);
    }

    /// Reserve the `count` lowest sequence numbers for lazily injected
    /// externals — see [`Engine::reserve_external_seqs`]; the semantics
    /// and the byte-identity argument carry over unchanged.
    pub fn reserve_external_seqs(&mut self, count: u64) {
        assert!(
            self.seq == 0 && self.external_end == 0,
            "reserve_external_seqs must run before any message is sequenced"
        );
        self.seq = count;
        self.external_next = 0;
        self.external_end = count;
    }

    /// Inject one external message with the next reserved low sequence
    /// number — see [`Engine::schedule_external_reserved`].
    pub fn schedule_external_reserved(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(
            self.external_next < self.external_end,
            "external sequence reservation exhausted"
        );
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.external_next;
        self.external_next += 1;
        self.push_external(at, seq, to, msg);
    }

    fn push_external(&mut self, at: SimTime, seq: u64, to: NodeId, msg: M) {
        let shard = self.shard_of[to.index()] as usize;
        self.shards[shard]
            .as_mut()
            .expect("shard present")
            .queue
            .push(
                at,
                seq,
                Envelope {
                    from: to,
                    to,
                    sent_at: at,
                    fate: LinkFate::Intact,
                    msg,
                },
            );
    }

    /// Run until every shard queue is empty or a limit is hit.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.with_exec(|eng, exec| eng.run_windows(Limit::Completion, exec))
    }

    /// Run until the clock passes `horizon` — the windowed counterpart of
    /// [`Engine::run_until`], with the final window clipped inclusively at
    /// the horizon (emissions from inside it land strictly later, so the
    /// clip is safe).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.with_exec(|eng, exec| eng.run_windows(Limit::Until(horizon), exec))
    }

    /// Run until the next event is due at or after `horizon` — the
    /// windowed counterpart of [`Engine::run_strictly_before`].
    pub fn run_strictly_before(&mut self, horizon: SimTime) -> RunOutcome {
        self.with_exec(|eng, exec| eng.run_windows(Limit::StrictlyBefore(horizon), exec))
    }

    /// Run a whole reserved timeline to completion — the counterpart of
    /// [`Engine::run_timeline`]. One thread scope spans the entire
    /// timeline, so workers stay alive across every injection instead of
    /// being respawned per drain.
    pub fn run_timeline(
        &mut self,
        timeline: impl IntoIterator<Item = (SimTime, NodeId, M)>,
    ) -> RunOutcome {
        self.with_exec(move |eng, exec| {
            for (at, to, msg) in timeline {
                let _ = eng.run_windows(Limit::StrictlyBefore(at), exec);
                eng.schedule_external_reserved(at, to, msg);
            }
            eng.run_windows(Limit::Completion, exec)
        })
    }

    /// Consume the engine and return its parts (nodes in global id order,
    /// merged stats, final clock) — the counterpart of
    /// [`Engine::into_parts`].
    pub fn into_parts(mut self) -> (Vec<N>, TrafficStats, SimTime) {
        self.refresh_merged_stats();
        let now = self.now;
        let stats = std::mem::take(&mut self.merged_stats);
        let shard_of = Arc::clone(&self.shard_of);
        let mut per_shard: Vec<std::vec::IntoIter<N>> = self
            .shards
            .into_iter()
            .map(|s| s.expect("shard present").nodes.into_iter())
            .collect();
        let nodes = (0..self.node_count)
            .map(|i| {
                per_shard[shard_of[i] as usize]
                    .next()
                    .expect("every global id maps to one shard slot")
            })
            .collect();
        (nodes, stats, now)
    }

    /// Open the execution context once (inline, or a scoped thread pool
    /// honouring [`with_thread_allowance`]) and run `f` inside it.
    fn with_exec<R>(&mut self, f: impl FnOnce(&mut Self, &mut Exec<M, N>) -> R) -> R {
        let k = self.shards.len();
        let allowance = thread_allowance();
        let threads = if allowance == 0 { k } else { k.min(allowance) };
        if k == 1 || threads <= 1 {
            return f(self, &mut Exec::Inline);
        }
        std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel();
            let mut jobs = Vec::with_capacity(threads);
            for _ in 0..threads {
                let (tx, rx) = mpsc::channel::<Job<M, N>>();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok(mut job) = rx.recv() {
                        job.state.run_window(job.end, job.clamp, job.cap);
                        if res_tx.send((job.idx, job.state)).is_err() {
                            break;
                        }
                    }
                });
                jobs.push(tx);
            }
            drop(res_tx);
            let mut exec = Exec::Pool {
                jobs,
                results: res_rx,
            };
            let r = f(self, &mut exec);
            // Dropping the job senders ends the worker loops; the scope
            // joins them before returning.
            drop(exec);
            r
        })
    }

    /// The windowed run loop: find the earliest pending event, clip the
    /// window against the limit, run every shard over it, then merge at
    /// the barrier. See the module docs for the safety argument.
    fn run_windows(&mut self, limit: Limit, exec: &mut Exec<M, N>) -> RunOutcome {
        let budget = self.config.max_deliveries;
        let start = self.delivered;
        let k = self.shards.len();
        // Per-shard earliest pending instants, rescanned each window (used
        // by the adaptive single-active-shard check).
        let mut earliest: Vec<Option<SimTime>> = vec![None; k];
        loop {
            let mut t_next: Option<SimTime> = None;
            for (s, slot) in self.shards.iter().enumerate() {
                let head = slot
                    .as_ref()
                    .expect("shard present")
                    .queue
                    .peek_key()
                    .map(|(at, _)| at);
                earliest[s] = head;
                if let Some(at) = head {
                    t_next = Some(t_next.map_or(at, |t| t.min(at)));
                }
            }
            let Some(t_next) = t_next else {
                self.refresh_merged_stats();
                return RunOutcome::Drained;
            };
            match limit {
                Limit::Until(h) if t_next > h => {
                    self.refresh_merged_stats();
                    return RunOutcome::ReachedHorizon;
                }
                Limit::StrictlyBefore(h) if t_next >= h => {
                    self.refresh_merged_stats();
                    return RunOutcome::ReachedHorizon;
                }
                _ => {}
            }
            let mut clamp = false;
            let end = if k == 1 {
                // Degenerate single shard: no cross-shard traffic exists,
                // so one window may span the whole limit.
                match limit {
                    Limit::Completion => WindowEnd::Unbounded,
                    Limit::Until(h) => WindowEnd::Inclusive(h),
                    Limit::StrictlyBefore(h) => WindowEnd::Exclusive(h),
                }
            } else {
                // Emissions at t ≥ t_next arrive cross-shard at ≥ t_next +
                // lookahead, so any window bounded above by that is safe
                // unconditionally. After quiet barriers the window may grow
                // to `G` lookahead spans — but only when exactly one shard
                // has anything pending below the grown end (otherwise two
                // shards could deliver either side of an in-flight parked
                // envelope and the merged order would diverge from the
                // serial schedule). The lone active shard self-clamps at
                // its first cross-shard emission (see `enqueue_outgoing`),
                // which keeps every window an exact serial prefix.
                let mut w = t_next + self.lookahead;
                if self.growth > 1 {
                    let grown = t_next + self.lookahead.times(self.growth);
                    let active = earliest
                        .iter()
                        .filter(|e| e.is_some_and(|at| at < grown))
                        .count();
                    if active == 1 {
                        w = grown;
                        clamp = true;
                    }
                }
                // When w overshoots the horizon, clip to the horizon with
                // the limit's own inclusivity.
                match limit {
                    Limit::Completion => WindowEnd::Exclusive(w),
                    Limit::Until(h) => {
                        if w > h {
                            WindowEnd::Inclusive(h)
                        } else {
                            WindowEnd::Exclusive(w)
                        }
                    }
                    Limit::StrictlyBefore(h) => {
                        if w >= h {
                            WindowEnd::Exclusive(h)
                        } else {
                            WindowEnd::Exclusive(w)
                        }
                    }
                }
            };
            // Remaining global budget, applied per shard: one window may
            // overshoot by up to (shards - 1) × remaining before the
            // barrier notices, which mirrors the serial cap's granularity
            // of "stop after the delivery that crossed the line".
            let cap = budget.saturating_sub(self.delivered - start).max(1);
            exec.run_all(&mut self.shards, end, clamp, cap);
            self.windows += 1;
            let routed = self.barrier();
            self.growth = if routed == 0 {
                (self.growth * 2).min(MAX_WINDOW_GROWTH)
            } else {
                1
            };
            if self.delivered - start >= budget {
                self.refresh_merged_stats();
                return RunOutcome::HitDeliveryLimit;
            }
        }
    }

    /// The window barrier: reconstruct the serial sequence assignment by
    /// k-way merging the shard delivery logs, then relabel queues, route
    /// cross-shard handoffs, and merge drop records (module docs, "Exact
    /// sequence reconstruction"). Returns the number of cross-shard
    /// envelopes routed, which drives the adaptive window growth factor.
    fn barrier(&mut self) -> u64 {
        let k = self.shards.len();
        let mut maps = std::mem::take(&mut self.prov_maps);
        maps.resize_with(k, Vec::new);
        for m in &mut maps {
            m.clear();
        }
        let mut heads = std::mem::take(&mut self.heads);
        heads.clear();
        heads.resize(k, 0);
        let mut seq = self.seq;
        loop {
            // Pick the globally smallest unmerged delivery by (at,
            // resolved key). Every head is resolvable: a provisional head's
            // parent delivery sits earlier in the *same* shard's log and
            // was therefore merged (and mapped) already.
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (s, slot) in self.shards.iter().enumerate() {
                let log = &slot.as_ref().expect("shard present").log;
                let Some(rec) = log.get(heads[s]) else {
                    continue;
                };
                let key = resolve_key(rec.key, &maps);
                if best.is_none_or(|(bat, bkey, _)| (rec.at, key) < (bat, bkey)) {
                    best = Some((rec.at, key, s));
                }
            }
            let Some((_, _, s)) = best else {
                break;
            };
            let rec = self.shards[s].as_ref().expect("shard present").log[heads[s]];
            heads[s] += 1;
            // This delivery's emissions get the next true sequence
            // numbers, in emission order — exactly the serial assignment.
            for _ in 0..rec.emits {
                maps[s].push(seq);
                seq += 1;
            }
        }
        self.seq = seq;
        let mut dscratch = std::mem::take(&mut self.drop_scratch);
        dscratch.clear();
        for slot in &mut self.shards {
            let state = slot.as_mut().expect("shard present");
            // Relabel queued events in place: provisional→true is
            // order-isomorphic, so the heap arrangement stays valid.
            state.queue.remap_seqs(|q| resolve_key(q, &maps));
            state.log.clear();
            state.prov_next = 0;
            for (at, key, rec) in state.drops_log.drain(..) {
                dscratch.push((at, resolve_key(key, &maps), rec));
            }
        }
        // Route the parked cross-shard envelopes with their resolved keys.
        // Buffers are taken and restored so their capacity is reused.
        let mut routed = 0u64;
        for src in 0..k {
            for dest in 0..k {
                if dest == src {
                    continue;
                }
                let mut buf = std::mem::take(
                    &mut self.shards[src].as_mut().expect("shard present").outbound[dest],
                );
                if !buf.is_empty() {
                    routed += buf.len() as u64;
                    let dq = self.shards[dest].as_mut().expect("shard present");
                    for (at, key, env) in buf.drain(..) {
                        dq.queue.push(at, resolve_key(key, &maps), env);
                    }
                }
                self.shards[src].as_mut().expect("shard present").outbound[dest] = buf;
            }
        }
        // Drops merge into the exact serial record order: the serial drop
        // log is a subsequence of the (at, seq)-sorted pop sequence.
        dscratch.sort_by_key(|&(at, key, _)| (at, key));
        self.drops.extend(dscratch.drain(..).map(|(_, _, rec)| rec));
        self.drop_scratch = dscratch;
        let mut now = self.now;
        let mut delivered = 0;
        for slot in &self.shards {
            let state = slot.as_ref().expect("shard present");
            now = now.max(state.now);
            delivered += state.delivered;
        }
        self.now = now;
        self.delivered = delivered;
        self.prov_maps = maps;
        self.heads = heads;
        routed
    }

    /// Re-merge shard stats into the cached [`stats`](Self::stats) view.
    fn refresh_merged_stats(&mut self) {
        let mut stats = TrafficStats::new();
        for s in &self.shards {
            stats.merge(&s.as_ref().expect("shard present").stats);
        }
        self.merged_stats = stats;
    }
}

/// A serial-or-parallel engine behind one API, so deployment code can pick
/// the backend from configuration (`engine_workers = 0` → serial) without
/// generics leaking upward. The serial variant additionally supports
/// arena recycling and phase profiling; the parallel variant additionally
/// reports [`ParallelPerf`].
pub enum AnyEngine<M: Message, N: Node<M>> {
    /// The classic single-threaded [`Engine`].
    Serial(Engine<M, N>),
    /// The sharded windowed [`ParallelEngine`].
    Parallel(ParallelEngine<M, N>),
}

impl<M: Message + Send, N: Node<M> + Send> AnyEngine<M, N> {
    /// Build the serial backend.
    pub fn serial(nodes: Vec<N>, fabric: Arc<dyn Fabric>) -> Self {
        AnyEngine::Serial(Engine::new(nodes, fabric))
    }

    /// Build the serial backend reusing a recycled storage arena.
    pub fn serial_in(nodes: Vec<N>, fabric: Arc<dyn Fabric>, arena: EngineArena<M>) -> Self {
        AnyEngine::Serial(Engine::new_in(nodes, fabric, arena))
    }

    /// Build the parallel backend over `partition`.
    pub fn parallel(nodes: Vec<N>, fabric: Arc<dyn Fabric>, partition: &Partition) -> Self {
        AnyEngine::Parallel(ParallelEngine::new(nodes, fabric, partition))
    }

    /// Replace the default configuration.
    pub fn with_config(self, config: EngineConfig) -> Self {
        match self {
            AnyEngine::Serial(e) => AnyEngine::Serial(e.with_config(config)),
            AnyEngine::Parallel(e) => AnyEngine::Parallel(e.with_config(config)),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        match self {
            AnyEngine::Serial(e) => e.now(),
            AnyEngine::Parallel(e) => e.now(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.node_count(),
            AnyEngine::Parallel(e) => e.node_count(),
        }
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &N {
        match self {
            AnyEngine::Serial(e) => e.node(id),
            AnyEngine::Parallel(e) => e.node(id),
        }
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        match self {
            AnyEngine::Serial(e) => e.node_mut(id),
            AnyEngine::Parallel(e) => e.node_mut(id),
        }
    }

    /// Iterate over all nodes in global id order.
    pub fn nodes(&self) -> Box<dyn Iterator<Item = &N> + '_> {
        match self {
            AnyEngine::Serial(e) => Box::new(e.nodes()),
            AnyEngine::Parallel(e) => Box::new(e.nodes()),
        }
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        match self {
            AnyEngine::Serial(e) => e.stats(),
            AnyEngine::Parallel(e) => e.stats(),
        }
    }

    /// Number of messages delivered so far (including timers).
    pub fn deliveries(&self) -> u64 {
        match self {
            AnyEngine::Serial(e) => e.deliveries(),
            AnyEngine::Parallel(e) => e.deliveries(),
        }
    }

    /// Messages still waiting in the future event list(s).
    pub fn pending(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.pending(),
            AnyEngine::Parallel(e) => e.pending(),
        }
    }

    /// Hot-path performance counters.
    pub fn perf(&self) -> EnginePerf {
        match self {
            AnyEngine::Serial(e) => e.perf(),
            AnyEngine::Parallel(e) => e.perf(),
        }
    }

    /// Parallel-execution counters, if the backend is parallel.
    pub fn parallel_perf(&self) -> Option<ParallelPerf> {
        match self {
            AnyEngine::Serial(_) => None,
            AnyEngine::Parallel(e) => Some(e.parallel_perf()),
        }
    }

    /// Start the per-phase wall-clock breakdown (serial backend only; the
    /// parallel backend ignores the request).
    pub fn enable_phase_profile(&mut self) {
        if let AnyEngine::Serial(e) = self {
            e.enable_phase_profile();
        }
    }

    /// The accumulated phase breakdown, if profiling ran on the serial
    /// backend.
    pub fn phase_breakdown(&self) -> Option<PhaseBreakdown> {
        match self {
            AnyEngine::Serial(e) => e.phase_breakdown(),
            AnyEngine::Parallel(_) => None,
        }
    }

    /// Install a fault schedule (empty schedules are not installed).
    pub fn set_faults(&mut self, schedule: Arc<FaultSchedule>) {
        match self {
            AnyEngine::Serial(e) => e.set_faults(schedule),
            AnyEngine::Parallel(e) => e.set_faults(schedule),
        }
    }

    /// The fault schedule in effect, if a non-empty one was installed.
    pub fn faults(&self) -> Option<&FaultSchedule> {
        match self {
            AnyEngine::Serial(e) => e.faults(),
            AnyEngine::Parallel(e) => e.faults(),
        }
    }

    /// Install a loss model (lossless models are not installed).
    pub fn set_loss(&mut self, model: LossModel) {
        match self {
            AnyEngine::Serial(e) => e.set_loss(model),
            AnyEngine::Parallel(e) => e.set_loss(model),
        }
    }

    /// The loss model in effect, if a lossy one was installed.
    pub fn loss(&self) -> Option<&LossModel> {
        match self {
            AnyEngine::Serial(e) => e.loss(),
            AnyEngine::Parallel(e) => e.loss(),
        }
    }

    /// Every envelope the fault plan or loss model dropped so far, in
    /// delivery order.
    pub fn drops(&self) -> &[DropRecord] {
        match self {
            AnyEngine::Serial(e) => e.drops(),
            AnyEngine::Parallel(e) => e.drops(),
        }
    }

    /// Inject a message from the outside world.
    pub fn schedule_external(&mut self, at: SimTime, to: NodeId, msg: M) {
        match self {
            AnyEngine::Serial(e) => e.schedule_external(at, to, msg),
            AnyEngine::Parallel(e) => e.schedule_external(at, to, msg),
        }
    }

    /// Reserve the `count` lowest sequence numbers for lazy injection.
    pub fn reserve_external_seqs(&mut self, count: u64) {
        match self {
            AnyEngine::Serial(e) => e.reserve_external_seqs(count),
            AnyEngine::Parallel(e) => e.reserve_external_seqs(count),
        }
    }

    /// Inject one external message with the next reserved sequence number.
    pub fn schedule_external_reserved(&mut self, at: SimTime, to: NodeId, msg: M) {
        match self {
            AnyEngine::Serial(e) => e.schedule_external_reserved(at, to, msg),
            AnyEngine::Parallel(e) => e.schedule_external_reserved(at, to, msg),
        }
    }

    /// Run until the future event list drains or a limit is hit.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        match self {
            AnyEngine::Serial(e) => e.run_to_completion(),
            AnyEngine::Parallel(e) => e.run_to_completion(),
        }
    }

    /// Run until the clock passes `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        match self {
            AnyEngine::Serial(e) => e.run_until(horizon),
            AnyEngine::Parallel(e) => e.run_until(horizon),
        }
    }

    /// Run until the next event is due at or after `horizon`.
    pub fn run_strictly_before(&mut self, horizon: SimTime) -> RunOutcome {
        match self {
            AnyEngine::Serial(e) => e.run_strictly_before(horizon),
            AnyEngine::Parallel(e) => e.run_strictly_before(horizon),
        }
    }

    /// Run a whole reserved timeline to completion.
    pub fn run_timeline(
        &mut self,
        timeline: impl IntoIterator<Item = (SimTime, NodeId, M)>,
    ) -> RunOutcome {
        match self {
            AnyEngine::Serial(e) => e.run_timeline(timeline),
            AnyEngine::Parallel(e) => e.run_timeline(timeline),
        }
    }

    /// Consume the engine and return its parts.
    pub fn into_parts(self) -> (Vec<N>, TrafficStats, SimTime) {
        match self {
            AnyEngine::Serial(e) => e.into_parts(),
            AnyEngine::Parallel(e) => e.into_parts(),
        }
    }

    /// Consume the engine, returning its parts plus the reusable storage
    /// arena when the backend can recycle one (serial only — parallel
    /// storage is sharded and rebuilt per run).
    pub fn recycle(self) -> (Vec<N>, TrafficStats, SimTime, Option<EngineArena<M>>) {
        match self {
            AnyEngine::Serial(e) => {
                let (nodes, stats, now, arena) = e.recycle();
                (nodes, stats, now, Some(arena))
            }
            AnyEngine::Parallel(e) => {
                let (nodes, stats, now) = e.into_parts();
                (nodes, stats, now, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{JitteredFabric, LinkModel, UniformFabric};
    use crate::stats::TrafficClass;
    use crate::time::SimDuration;

    /// Ring chatter: every node forwards a hop-counted token to its right
    /// neighbour until the TTL dies, plus a periodic local timer — enough
    /// cross-node traffic to exercise handoffs in every multi-shard run.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Tok {
        Pass { ttl: u32 },
        Tick,
    }

    impl Message for Tok {
        fn traffic_class(&self) -> TrafficClass {
            match self {
                Tok::Pass { .. } => TrafficClass::EventRouting,
                Tok::Tick => TrafficClass::Timer,
            }
        }
        fn kind(&self) -> &'static str {
            match self {
                Tok::Pass { .. } => "pass",
                Tok::Tick => "tick",
            }
        }
    }

    struct RingNode {
        n: u32,
        seen: Vec<(SimTime, NodeId, Tok)>,
        ticks: u32,
    }

    impl Node<Tok> for RingNode {
        fn on_message(&mut self, env: Envelope<Tok>, ctx: &mut Context<Tok>) {
            self.seen.push((ctx.now(), env.from, env.msg.clone()));
            match env.msg {
                Tok::Pass { ttl } if ttl > 0 => {
                    let next = NodeId((ctx.self_id().0 + 1) % self.n);
                    ctx.send(next, Tok::Pass { ttl: ttl - 1 });
                }
                Tok::Pass { .. } => {}
                Tok::Tick => {
                    self.ticks += 1;
                    if self.ticks < 3 {
                        ctx.schedule(SimDuration::from_millis(7), Tok::Tick);
                    }
                    let next = NodeId((ctx.self_id().0 + 1) % self.n);
                    ctx.send(next, Tok::Pass { ttl: 5 });
                }
            }
        }
    }

    fn ring(n: u32) -> Vec<RingNode> {
        (0..n)
            .map(|_| RingNode {
                n,
                seen: Vec::new(),
                ticks: 0,
            })
            .collect()
    }

    type Fingerprint = (Vec<Vec<(SimTime, NodeId, Tok)>>, u64, String, SimTime);

    fn serial_fingerprint(n: u32, fabric: Arc<dyn Fabric>) -> Fingerprint {
        let mut eng = Engine::new(ring(n), fabric);
        for i in 0..n {
            eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
        }
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        let deliveries = eng.deliveries();
        let stats = format!("{:?}", eng.stats());
        let (nodes, _, now) = eng.into_parts();
        (
            nodes.into_iter().map(|nd| nd.seen).collect(),
            deliveries,
            stats,
            now,
        )
    }

    fn parallel_fingerprint(n: u32, fabric: Arc<dyn Fabric>, shards: usize) -> Fingerprint {
        let part = Partition::contiguous(n as usize, shards);
        let mut eng = ParallelEngine::new(ring(n), fabric, &part);
        for i in 0..n {
            eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
        }
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        let deliveries = eng.deliveries();
        let stats = format!("{:?}", eng.stats());
        let (nodes, _, now) = eng.into_parts();
        (
            nodes.into_iter().map(|nd| nd.seen).collect(),
            deliveries,
            stats,
            now,
        )
    }

    #[test]
    fn degenerate_single_shard_is_byte_identical_to_serial() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let serial = serial_fingerprint(10, fabric.clone());
        let parallel = parallel_fingerprint(10, fabric, 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn multi_shard_is_byte_identical_to_serial() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let serial = serial_fingerprint(12, fabric.clone());
        for shards in [2, 3, 4, 8] {
            let parallel = parallel_fingerprint(12, fabric.clone(), shards);
            assert_eq!(serial, parallel, "{shards} shards diverged");
        }
    }

    #[test]
    fn jittered_fabric_stays_byte_identical() {
        for seed in 0..4u64 {
            let model = LinkModel {
                seed,
                jitter: SimDuration::from_millis(9),
                asymmetry: 0.4,
                degraded: Vec::new(),
            };
            let fabric = Arc::new(JitteredFabric::new(
                UniformFabric::new(SimDuration::from_millis(4)),
                model,
            ));
            let serial = serial_fingerprint(9, fabric.clone());
            for shards in [2, 4] {
                let parallel = parallel_fingerprint(9, fabric.clone(), shards);
                assert_eq!(serial, parallel, "seed {seed}, {shards} shards diverged");
            }
        }
    }

    #[test]
    fn zero_floor_fabric_collapses_to_one_shard() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::ZERO));
        let part = Partition::contiguous(6, 4);
        let eng = ParallelEngine::new(ring(6), fabric, &part);
        assert_eq!(
            eng.shard_count(),
            1,
            "no lookahead must degrade to a single shard"
        );
    }

    #[test]
    fn thread_allowance_of_one_runs_inline_and_identically() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let pooled = parallel_fingerprint(12, fabric.clone(), 4);
        let inline = with_thread_allowance(1, || parallel_fingerprint(12, fabric.clone(), 4));
        assert_eq!(pooled, inline);
    }

    #[test]
    fn faults_drop_identically_across_backends() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let schedule = Arc::new(FaultSchedule::new().crash(
            NodeId(5),
            SimTime::from_millis(4),
            SimTime::from_millis(60),
        ));
        let run_serial = || {
            let mut eng = Engine::new(ring(12), fabric.clone());
            eng.set_faults(schedule.clone());
            for i in 0..12u32 {
                eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
            }
            eng.run_to_completion();
            (eng.drops().to_vec(), eng.deliveries())
        };
        let run_parallel = |shards: usize| {
            let part = Partition::contiguous(12, shards);
            let mut eng = ParallelEngine::new(ring(12), fabric.clone(), &part);
            eng.set_faults(schedule.clone());
            for i in 0..12u32 {
                eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
            }
            eng.run_to_completion();
            (eng.drops().to_vec(), eng.deliveries())
        };
        let serial = run_serial();
        assert!(!serial.0.is_empty(), "the crash window must drop something");
        for shards in [1, 2, 4] {
            assert_eq!(serial, run_parallel(shards), "{shards} shards diverged");
        }
    }

    #[test]
    fn lossy_links_drop_identically_across_backends() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let model = LossModel::new(0xBAD_1055, 0.25, 0.1);
        let run_serial = || {
            let mut eng = Engine::new(ring(12), fabric.clone());
            eng.set_loss(model);
            for i in 0..12u32 {
                eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
            }
            eng.run_to_completion();
            (eng.drops().to_vec(), eng.deliveries())
        };
        let run_parallel = |shards: usize| {
            let part = Partition::contiguous(12, shards);
            let mut eng = ParallelEngine::new(ring(12), fabric.clone(), &part);
            eng.set_loss(model);
            for i in 0..12u32 {
                eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
            }
            eng.run_to_completion();
            (eng.drops().to_vec(), eng.deliveries())
        };
        let serial = run_serial();
        assert!(
            serial.0.iter().any(|d| d.cause == DropCause::Loss),
            "a 25% loss rate must lose something"
        );
        for shards in [1, 2, 4] {
            assert_eq!(serial, run_parallel(shards), "{shards} shards diverged");
        }
    }

    #[test]
    fn horizons_and_timeline_injection_match_serial() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let timeline: Vec<(SimTime, NodeId, Tok)> = (0..16u64)
            .map(|i| {
                (
                    SimTime::from_millis(i * 5),
                    NodeId((i % 12) as u32),
                    Tok::Tick,
                )
            })
            .collect();
        let serial = {
            let mut eng = Engine::new(ring(12), fabric.clone());
            eng.reserve_external_seqs(timeline.len() as u64);
            assert_eq!(
                eng.run_timeline(timeline.iter().cloned()),
                RunOutcome::Drained
            );
            let deliveries = eng.deliveries();
            let (nodes, stats, now) = eng.into_parts();
            (
                nodes.into_iter().map(|nd| nd.seen).collect::<Vec<_>>(),
                deliveries,
                format!("{stats:?}"),
                now,
            )
        };
        for shards in [2, 4] {
            let part = Partition::contiguous(12, shards);
            let mut eng = ParallelEngine::new(ring(12), fabric.clone(), &part);
            eng.reserve_external_seqs(timeline.len() as u64);
            assert_eq!(
                eng.run_timeline(timeline.iter().cloned()),
                RunOutcome::Drained
            );
            let deliveries = eng.deliveries();
            let (nodes, stats, now) = eng.into_parts();
            let parallel = (
                nodes.into_iter().map(|nd| nd.seen).collect::<Vec<_>>(),
                deliveries,
                format!("{stats:?}"),
                now,
            );
            assert_eq!(serial, parallel, "{shards} shards diverged");
        }
    }

    #[test]
    fn interleaved_horizon_runs_match_serial() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let drive_serial = || {
            let mut eng = Engine::new(ring(12), fabric.clone());
            for i in 0..12u32 {
                eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
            }
            let mut trace = Vec::new();
            for h in [7u64, 8, 20, 21, 40] {
                let out = eng.run_until(SimTime::from_millis(h));
                trace.push((out, eng.now(), eng.deliveries(), eng.pending()));
            }
            let out = eng.run_to_completion();
            trace.push((out, eng.now(), eng.deliveries(), eng.pending()));
            trace
        };
        let drive_parallel = |shards: usize| {
            let part = Partition::contiguous(12, shards);
            let mut eng = ParallelEngine::new(ring(12), fabric.clone(), &part);
            for i in 0..12u32 {
                eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
            }
            let mut trace = Vec::new();
            for h in [7u64, 8, 20, 21, 40] {
                let out = eng.run_until(SimTime::from_millis(h));
                trace.push((out, eng.now(), eng.deliveries(), eng.pending()));
            }
            let out = eng.run_to_completion();
            trace.push((out, eng.now(), eng.deliveries(), eng.pending()));
            trace
        };
        let serial = drive_serial();
        for shards in [1, 2, 4] {
            assert_eq!(serial, drive_parallel(shards), "{shards} shards diverged");
        }
    }

    #[test]
    fn delivery_limit_reports_like_serial() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(1)));
        let part = Partition::contiguous(12, 4);
        let mut eng = ParallelEngine::new(ring(12), fabric, &part)
            .with_config(EngineConfig { max_deliveries: 10 });
        for i in 0..12u32 {
            eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
        }
        assert_eq!(eng.run_to_completion(), RunOutcome::HitDeliveryLimit);
        assert!(
            eng.deliveries() >= 10,
            "the cap fires at or past the budget"
        );
    }

    #[test]
    fn parallel_perf_reports_windows_and_handoffs() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let part = Partition::contiguous(12, 4);
        let mut eng = ParallelEngine::new(ring(12), fabric, &part);
        for i in 0..12u32 {
            eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
        }
        eng.run_to_completion();
        let perf = eng.parallel_perf();
        assert_eq!(perf.shards.len(), 4);
        assert!(perf.windows > 0);
        assert!(
            perf.handoff_envelopes > 0,
            "ring traffic must cross shard boundaries"
        );
        assert_eq!(perf.lookahead, SimDuration::from_millis(3));
        assert_eq!(
            perf.shards.iter().map(|s| s.deliveries).sum::<u64>(),
            eng.deliveries()
        );
        assert_eq!(perf.shards.iter().map(|s| s.nodes).sum::<usize>(), 12);
    }

    #[test]
    fn any_engine_backends_agree() {
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(3)));
        let part = Partition::contiguous(12, 3);
        let run = |mut eng: AnyEngine<Tok, RingNode>| {
            for i in 0..12u32 {
                eng.schedule_external(SimTime::from_millis(i as u64), NodeId(i), Tok::Tick);
            }
            assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
            let deliveries = eng.deliveries();
            let (nodes, stats, now) = eng.into_parts();
            (
                nodes.into_iter().map(|nd| nd.seen).collect::<Vec<_>>(),
                deliveries,
                format!("{stats:?}"),
                now,
            )
        };
        let serial = run(AnyEngine::serial(ring(12), fabric.clone()));
        let parallel = run(AnyEngine::parallel(ring(12), fabric, &part));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn thread_allowance_nests_and_restores() {
        assert_eq!(thread_allowance(), 0);
        with_thread_allowance(4, || {
            assert_eq!(thread_allowance(), 4);
            with_thread_allowance(2, || assert_eq!(thread_allowance(), 2));
            assert_eq!(thread_allowance(), 4);
        });
        assert_eq!(thread_allowance(), 0);
    }
}
