//! The pre-overhaul engine, preserved as a differential oracle.
//!
//! [`ReferenceEngine`] is the engine exactly as it stood before the hot-path
//! overhaul: the future-event list is a `BinaryHeap<Reverse<Scheduled<M>>>`
//! of owned entries, the per-link channel clocks live in a `HashMap`, and
//! every delivery allocates a fresh `Context` outbox. It exists for two
//! reasons and is **not** a second simulation backend:
//!
//! 1. **Differential testing** — `tests/engine_equivalence.rs` drives
//!    identical seeded workloads (including jittered fabrics) through this
//!    engine and [`Engine`](crate::Engine) and asserts byte-identical
//!    delivery sequences and traffic totals. Any ordering divergence in the
//!    pooled 4-ary queue or the dense/sharded clock tables fails loudly.
//! 2. **Benchmark baseline** — `micro_engine` and the `BENCH_engine.json`
//!    trajectory measure the overhaul's deliveries/sec win against this
//!    path, so the speedup is re-measured on every machine rather than
//!    asserted from a one-off number.
//!
//! Behavioural equivalence matters; speed does not. Keep this file in sync
//! with semantic engine changes (new clamp rules, new ordering), never with
//! representation changes — representation differences are the point.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::hash::BuildHasherDefault;
use std::sync::Arc;

use crate::clocks::LinkKeyHasher;
use crate::engine::{Context, Envelope, Node, Outgoing};
use crate::fabric::Fabric;
use crate::ids::NodeId;
use crate::stats::{ClassCounter, Message, TrafficClass, TrafficStats};
use crate::time::SimTime;

/// The pre-overhaul traffic accounting, costs included: a `BTreeMap` walk
/// per class and — the expensive part — `kind.to_string()` *per recorded
/// message* to key the per-kind map. Kept so the benchmark baseline pays
/// exactly what the old engine paid.
#[derive(Debug, Default)]
struct LegacyStats {
    per_class: BTreeMap<TrafficClass, ClassCounter>,
    per_kind: BTreeMap<String, ClassCounter>,
    per_link: BTreeMap<(u32, u32), u64>,
    deliveries: u64,
}

impl LegacyStats {
    fn record(&mut self, class: TrafficClass, kind: &'static str, hops: u32, bytes: u32) {
        let c = self.per_class.entry(class).or_default();
        c.messages += 1;
        c.hops += hops as u64;
        c.bytes += bytes as u64;
        let k = self.per_kind.entry(kind.to_string()).or_default();
        k.messages += 1;
        k.hops += hops as u64;
        k.bytes += bytes as u64;
    }

    /// Convert to the modern representation for comparison. The handful of
    /// kind labels is leaked into `&'static str`s — bounded by distinct
    /// kinds per conversion, and conversions happen once per reference run
    /// (tests and benches only).
    fn to_stats(&self) -> TrafficStats {
        let mut stats = TrafficStats::new();
        for (&class, &counter) in &self.per_class {
            stats.add_class_counter(class, counter);
        }
        for (kind, &counter) in &self.per_kind {
            stats.add_kind_counter(Box::leak(kind.clone().into_boxed_str()), counter);
        }
        for (&(src, dst), &bytes) in &self.per_link {
            stats.add_link_bytes(src, dst, bytes);
        }
        stats.deliveries = self.deliveries;
        stats
    }
}

/// One entry of the legacy future event list: the full envelope moves
/// through the heap with its ordering key.
#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The legacy engine: `BinaryHeap` event list + `HashMap` link clocks +
/// per-delivery outbox allocation. Same delivery semantics as
/// [`Engine`](crate::Engine), kept only as an oracle (see module docs).
pub struct ReferenceEngine<M: Message, N: Node<M>> {
    nodes: Vec<N>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    now: SimTime,
    seq: u64,
    fabric: Arc<dyn Fabric>,
    stats: LegacyStats,
    delivered: u64,
    /// Per ordered link: `(channel clock, send counter)` — the counter
    /// mirrors the semantic change that keys variable-fabric sampling off
    /// the link-local send index instead of the global sequence.
    link_clock: HashMap<u64, (SimTime, u64), BuildHasherDefault<LinkKeyHasher>>,
}

impl<M: Message, N: Node<M>> ReferenceEngine<M, N> {
    /// Create a reference engine over the given nodes and fabric.
    pub fn new(nodes: Vec<N>, fabric: Arc<dyn Fabric>) -> Self {
        ReferenceEngine {
            nodes,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            fabric,
            stats: LegacyStats::default(),
            delivered: 0,
            link_clock: HashMap::default(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Traffic statistics accumulated so far, converted to the modern
    /// representation (owned: the legacy internals are `String`-keyed).
    pub fn stats(&self) -> TrafficStats {
        self.stats.to_stats()
    }

    /// Number of messages delivered so far (including timers).
    pub fn deliveries(&self) -> u64 {
        self.delivered
    }

    /// Inject a message from the outside world, exactly like
    /// [`Engine::schedule_external`](crate::Engine::schedule_external).
    pub fn schedule_external(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.next_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            env: Envelope {
                from: to,
                to,
                sent_at: at,
                fate: crate::faults::LinkFate::Intact,
                msg,
            },
        }));
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn enqueue_outgoing(&mut self, origin: NodeId, sent_at: SimTime, out: Vec<Outgoing<M>>) {
        for o in out {
            match o {
                Outgoing::Send { to, msg } => {
                    let seq = self.next_seq();
                    let (clock, sends) = self
                        .link_clock
                        .entry(crate::ids::pack_pair(origin, to))
                        .or_insert((SimTime::ZERO, 0));
                    // Sample the fabric with this link's send index (the
                    // engine's jitter key), then bump the counter.
                    let cost = self.fabric.link(origin, to, sent_at, *sends);
                    *sends += 1;
                    let bytes = msg.wire_bytes();
                    self.stats
                        .record(msg.traffic_class(), msg.kind(), cost.hops, bytes);
                    if bytes > 0 {
                        *self.stats.per_link.entry((origin.0, to.0)).or_insert(0) += bytes as u64;
                    }
                    let at = (sent_at + cost.latency).max(*clock);
                    *clock = at;
                    self.queue.push(Reverse(Scheduled {
                        at,
                        seq,
                        env: Envelope {
                            from: origin,
                            to,
                            sent_at,
                            fate: crate::faults::LinkFate::Intact,
                            msg,
                        },
                    }));
                }
                Outgoing::Timer { delay, msg } => {
                    let seq = self.next_seq();
                    self.queue.push(Reverse(Scheduled {
                        at: sent_at + delay,
                        seq,
                        env: Envelope {
                            from: origin,
                            to: origin,
                            sent_at,
                            fate: crate::faults::LinkFate::Intact,
                            msg,
                        },
                    }));
                }
            }
        }
    }

    /// Deliver a single message. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(next)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(next.at >= self.now, "time must be monotone");
        self.now = next.at;
        self.delivered += 1;
        self.stats.deliveries += 1;
        let to = next.env.to;
        // The legacy per-delivery allocation, on purpose.
        let mut ctx = Context::with_outbox(self.now, to, Vec::new());
        self.nodes[to.index()].on_message(next.env, &mut ctx);
        let outbox = ctx.into_outbox();
        self.enqueue_outgoing(to, self.now, outbox);
        true
    }

    /// Run until the future event list is empty.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Run until the clock passes `horizon`, peek-then-pop style (the
    /// legacy double queue access `Engine::run_until` no longer performs).
    pub fn run_until(&mut self, horizon: SimTime) {
        loop {
            match self.queue.peek() {
                None => return,
                Some(Reverse(next)) if next.at > horizon => return,
                Some(_) => {}
            }
            let progressed = self.step();
            debug_assert!(progressed);
        }
    }

    /// Consume the engine and return its parts (nodes + stats).
    pub fn into_parts(self) -> (Vec<N>, TrafficStats, SimTime) {
        let stats = self.stats.to_stats();
        (self.nodes, stats, self.now)
    }
}
