//! Traffic accounting.
//!
//! The paper's primary overhead metric is:
//!
//! > "Message overhead per handoff: the total overhead on the network traffic
//! > caused by mobile clients divided by the number of handoff processes.
//! > Network traffic is measured as the total hops that all messages traveled
//! > in the network."
//!
//! Rather than instrumenting each protocol, the simulation engine classifies
//! every message it transports through the [`Message`] trait and accumulates
//! per-class hop counts here. The evaluation harness then derives
//! "overhead caused by mobile clients" as the sum of the mobility classes.

use std::collections::BTreeMap;

/// Coarse classification of simulated traffic used for the paper's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Event dissemination over the overlay tree toward stationary
    /// subscription points — traffic that exists regardless of mobility.
    EventRouting,
    /// Final delivery of an event to a connected client over a wireless link.
    EventDelivery,
    /// Subscription/unsubscription propagation that is part of the *static*
    /// system operation (initial subscriptions).
    Subscription,
    /// Subscription/unsubscription propagation *caused by a handoff*
    /// (sub-unsub re-subscribe / unsubscribe waves, MHH `sub_migration`).
    MobilityControl,
    /// Events moved between brokers because of mobility: queue transfers,
    /// in-transit captures, home-broker triangle forwarding.
    MobilityTransfer,
    /// Control messages between a client and its broker (connect, disconnect,
    /// publish requests).
    ClientControl,
    /// Self-scheduled timers — not transported on any link, never counted.
    Timer,
}

impl TrafficClass {
    /// Whether this class counts toward the paper's "overhead caused by
    /// mobile clients".
    pub fn is_mobility(self) -> bool {
        matches!(
            self,
            TrafficClass::MobilityControl | TrafficClass::MobilityTransfer
        )
    }

    /// Whether this class is transported on network links at all.
    pub fn is_network(self) -> bool {
        !matches!(self, TrafficClass::Timer)
    }
}

/// Trait implemented by every message type transported by the engine so that
/// traffic can be classified without the engine knowing protocol details.
pub trait Message: Clone + std::fmt::Debug {
    /// Classify the message for traffic accounting.
    fn traffic_class(&self) -> TrafficClass;

    /// A short human-readable kind label used in per-kind breakdowns.
    fn kind(&self) -> &'static str {
        "message"
    }
}

/// Per-class counters plus a per-kind breakdown.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    /// messages and hops per traffic class
    per_class: BTreeMap<TrafficClass, ClassCounter>,
    /// messages and hops per message kind string
    per_kind: BTreeMap<String, ClassCounter>,
    /// Total number of engine deliveries (including timers).
    pub deliveries: u64,
}

/// A (messages, hops) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounter {
    /// Number of messages recorded.
    pub messages: u64,
    /// Total hops traveled by those messages.
    pub hops: u64,
}

impl TrafficStats {
    /// Create an empty stats collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one transported message.
    pub fn record(&mut self, class: TrafficClass, kind: &'static str, hops: u32) {
        let c = self.per_class.entry(class).or_default();
        c.messages += 1;
        c.hops += hops as u64;
        let k = self.per_kind.entry(kind.to_string()).or_default();
        k.messages += 1;
        k.hops += hops as u64;
    }

    /// Counter for one class.
    pub fn class(&self, class: TrafficClass) -> ClassCounter {
        self.per_class.get(&class).copied().unwrap_or_default()
    }

    /// Counter for one message kind.
    pub fn kind(&self, kind: &str) -> ClassCounter {
        self.per_kind.get(kind).copied().unwrap_or_default()
    }

    /// Iterate over the per-kind breakdown (sorted by kind name).
    pub fn kinds(&self) -> impl Iterator<Item = (&str, ClassCounter)> {
        self.per_kind.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Total hops attributable to mobility management ("overhead caused by
    /// mobile clients" in the paper's metric).
    pub fn mobility_hops(&self) -> u64 {
        self.per_class
            .iter()
            .filter(|(c, _)| c.is_mobility())
            .map(|(_, v)| v.hops)
            .sum()
    }

    /// Total messages attributable to mobility management.
    pub fn mobility_messages(&self) -> u64 {
        self.per_class
            .iter()
            .filter(|(c, _)| c.is_mobility())
            .map(|(_, v)| v.messages)
            .sum()
    }

    /// Total hops over all network classes.
    pub fn total_hops(&self) -> u64 {
        self.per_class
            .iter()
            .filter(|(c, _)| c.is_network())
            .map(|(_, v)| v.hops)
            .sum()
    }

    /// Total messages over all network classes.
    pub fn total_messages(&self) -> u64 {
        self.per_class
            .iter()
            .filter(|(c, _)| c.is_network())
            .map(|(_, v)| v.messages)
            .sum()
    }

    /// Merge another stats collector into this one (used when aggregating
    /// across repeated runs of the same experiment point).
    pub fn merge(&mut self, other: &TrafficStats) {
        for (class, counter) in &other.per_class {
            let c = self.per_class.entry(*class).or_default();
            c.messages += counter.messages;
            c.hops += counter.hops;
        }
        for (kind, counter) in &other.per_kind {
            let c = self.per_kind.entry(kind.clone()).or_default();
            c.messages += counter.messages;
            c.hops += counter.hops;
        }
        self.deliveries += other.deliveries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_class_and_kind() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::MobilityControl, "sub_migration", 1);
        s.record(TrafficClass::MobilityControl, "sub_migration", 1);
        s.record(TrafficClass::MobilityTransfer, "pq_transfer", 5);
        s.record(TrafficClass::EventRouting, "forward", 1);

        assert_eq!(s.class(TrafficClass::MobilityControl).messages, 2);
        assert_eq!(s.class(TrafficClass::MobilityControl).hops, 2);
        assert_eq!(s.kind("pq_transfer").hops, 5);
        assert_eq!(s.mobility_hops(), 7);
        assert_eq!(s.mobility_messages(), 3);
        assert_eq!(s.total_hops(), 8);
        assert_eq!(s.total_messages(), 4);
    }

    #[test]
    fn timers_never_count_as_network_traffic() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::Timer, "timer", 0);
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_hops(), 0);
        assert!(!TrafficClass::Timer.is_network());
    }

    #[test]
    fn mobility_classification() {
        assert!(TrafficClass::MobilityControl.is_mobility());
        assert!(TrafficClass::MobilityTransfer.is_mobility());
        assert!(!TrafficClass::EventRouting.is_mobility());
        assert!(!TrafficClass::Subscription.is_mobility());
        assert!(!TrafficClass::EventDelivery.is_mobility());
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::EventRouting, "forward", 3);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::EventRouting, "forward", 4);
        b.record(TrafficClass::MobilityControl, "handoff_request", 6);
        b.deliveries = 10;
        a.merge(&b);
        assert_eq!(a.class(TrafficClass::EventRouting).hops, 7);
        assert_eq!(a.mobility_hops(), 6);
        assert_eq!(a.deliveries, 10);
    }

    #[test]
    fn unknown_kind_is_zero() {
        let s = TrafficStats::new();
        assert_eq!(s.kind("nope"), ClassCounter::default());
        assert_eq!(
            s.class(TrafficClass::EventDelivery),
            ClassCounter::default()
        );
    }
}
