//! Traffic accounting.
//!
//! The paper's primary overhead metric is:
//!
//! > "Message overhead per handoff: the total overhead on the network traffic
//! > caused by mobile clients divided by the number of handoff processes.
//! > Network traffic is measured as the total hops that all messages traveled
//! > in the network."
//!
//! Rather than instrumenting each protocol, the simulation engine classifies
//! every message it transports through the [`Message`] trait and accumulates
//! per-class hop counts here. The evaluation harness then derives
//! "overhead caused by mobile clients" as the sum of the mobility classes.
//!
//! # Representation
//!
//! [`record`](TrafficStats::record) runs once per transported message — the
//! engine's hot path — so neither side of the breakdown touches an
//! allocating map anymore:
//!
//! * per-**class** counters live in a fixed `[ClassCounter; N]` array
//!   indexed by the enum discriminant (the old `BTreeMap<TrafficClass, _>`
//!   cost a tree walk per message);
//! * per-**kind** counters are indexed through an interning registry over
//!   the `&'static str` labels [`Message::kind`] returns: each distinct
//!   label pointer resolves once to a dense index (open addressing over the
//!   pointer identity, with a content-equality fallback so equal labels
//!   from different crates share one counter), after which recording is an
//!   array increment. A one-entry cache short-circuits the common case of
//!   consecutive messages sharing a kind. The old path allocated a
//!   `String` per *lookup* (`BTreeMap<String, _>::entry(kind.to_string())`)
//!   — per message, not per kind.
//!
//! Everything observable (per-kind totals, iteration order, merge results)
//! is keyed by label *content*, so the interner is invisible to callers.

/// Coarse classification of simulated traffic used for the paper's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Event dissemination over the overlay tree toward stationary
    /// subscription points — traffic that exists regardless of mobility.
    EventRouting,
    /// Final delivery of an event to a connected client over a wireless link.
    EventDelivery,
    /// Subscription/unsubscription propagation that is part of the *static*
    /// system operation (initial subscriptions).
    Subscription,
    /// Subscription/unsubscription propagation *caused by a handoff*
    /// (sub-unsub re-subscribe / unsubscribe waves, MHH `sub_migration`).
    MobilityControl,
    /// Events moved between brokers because of mobility: queue transfers,
    /// in-transit captures, home-broker triangle forwarding.
    MobilityTransfer,
    /// Control messages between a client and its broker (connect, disconnect,
    /// publish requests).
    ClientControl,
    /// Overlay-repair traffic after a fault: failure notifications, filter
    /// re-announcements and tunneled envelopes routed around a partition.
    Repair,
    /// Self-scheduled timers — not transported on any link, never counted.
    Timer,
}

impl TrafficClass {
    /// Number of traffic classes (the size of the per-class counter array).
    pub const COUNT: usize = 8;

    /// Every class, in declaration (= counter array) order.
    pub const ALL: [TrafficClass; TrafficClass::COUNT] = [
        TrafficClass::EventRouting,
        TrafficClass::EventDelivery,
        TrafficClass::Subscription,
        TrafficClass::MobilityControl,
        TrafficClass::MobilityTransfer,
        TrafficClass::ClientControl,
        TrafficClass::Repair,
        TrafficClass::Timer,
    ];

    /// The class's slot in the per-class counter array.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether this class counts toward the paper's "overhead caused by
    /// mobile clients".
    pub fn is_mobility(self) -> bool {
        matches!(
            self,
            TrafficClass::MobilityControl | TrafficClass::MobilityTransfer
        )
    }

    /// Whether this class is transported on network links at all.
    pub fn is_network(self) -> bool {
        !matches!(self, TrafficClass::Timer)
    }
}

/// Trait implemented by every message type transported by the engine so that
/// traffic can be classified without the engine knowing protocol details.
pub trait Message: Clone + std::fmt::Debug {
    /// Classify the message for traffic accounting.
    fn traffic_class(&self) -> TrafficClass;

    /// A short human-readable kind label used in per-kind breakdowns.
    fn kind(&self) -> &'static str {
        "message"
    }

    /// Modeled size of the message on the wire, in bytes. The default of 0
    /// keeps byte accounting inert (and allocation-free) for message types
    /// that do not model payloads; protocols opt in by returning the
    /// rendered wire size of payload-bearing messages.
    fn wire_bytes(&self) -> u32 {
        0
    }
}

/// A (messages, hops, bytes) triple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounter {
    /// Number of messages recorded.
    pub messages: u64,
    /// Total hops traveled by those messages.
    pub hops: u64,
    /// Total modeled bytes-on-wire of those messages (0 unless the workload
    /// models payloads — see [`Message::wire_bytes`]).
    pub bytes: u64,
}

impl ClassCounter {
    #[inline]
    fn bump(&mut self, hops: u32, bytes: u32) {
        self.messages += 1;
        self.hops += hops as u64;
        self.bytes += bytes as u64;
    }
}

/// One slot of the kind-interner's pointer index. `ptr == 0` is the empty
/// sentinel (no `&'static str` has a null data pointer).
#[derive(Clone, Copy)]
struct PtrSlot {
    ptr: usize,
    len: u32,
    idx: u32,
}

const PTR_EMPTY: PtrSlot = PtrSlot {
    ptr: 0,
    len: 0,
    idx: 0,
};

/// Per-class counters plus a per-kind breakdown.
#[derive(Clone)]
pub struct TrafficStats {
    /// Messages and hops per traffic class, indexed by
    /// [`TrafficClass::index`].
    per_class: [ClassCounter; TrafficClass::COUNT],
    /// Interned kind labels, in first-seen order; parallel to `kind_counts`.
    kind_names: Vec<&'static str>,
    /// Messages and hops per interned kind.
    kind_counts: Vec<ClassCounter>,
    /// Open-addressing index from label *pointer identity* to interned
    /// index. Content equality is resolved on first sight of a pointer, so
    /// two equal literals at different addresses alias to one counter.
    ptr_index: Vec<PtrSlot>,
    /// Occupied slots in `ptr_index` (load-factor check).
    ptr_used: usize,
    /// One-entry cache: the last label recorded and its index.
    last: Option<(&'static str, u32)>,
    /// Per-link bytes-on-wire, keyed by `(src, dst)` node index. Only ever
    /// populated for messages with a non-zero wire size, so workloads
    /// without payload modeling never touch (or allocate) the map.
    per_link: std::collections::BTreeMap<(u32, u32), u64>,
    /// Total number of engine deliveries (including timers).
    pub deliveries: u64,
}

impl Default for TrafficStats {
    fn default() -> Self {
        TrafficStats {
            per_class: [ClassCounter::default(); TrafficClass::COUNT],
            kind_names: Vec::new(),
            kind_counts: Vec::new(),
            ptr_index: Vec::new(),
            ptr_used: 0,
            last: None,
            per_link: std::collections::BTreeMap::new(),
            deliveries: 0,
        }
    }
}

#[inline]
fn same_label(a: &'static str, b: &'static str) -> bool {
    std::ptr::eq(a.as_ptr(), b.as_ptr()) && a.len() == b.len()
}

impl TrafficStats {
    /// Create an empty stats collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one transported message.
    #[inline]
    pub fn record(&mut self, class: TrafficClass, kind: &'static str, hops: u32, bytes: u32) {
        self.per_class[class.index()].bump(hops, bytes);
        let idx = match self.last {
            Some((s, idx)) if same_label(s, kind) => idx,
            _ => {
                let idx = self.kind_slot(kind);
                self.last = Some((kind, idx));
                idx
            }
        };
        self.kind_counts[idx as usize].bump(hops, bytes);
    }

    /// Record bytes-on-wire for one directed link. Call only for messages
    /// with a non-zero wire size: the per-link map stays empty (and the hot
    /// path allocation-free) when payloads are not modeled.
    #[inline]
    pub fn record_link(&mut self, src: u32, dst: u32, bytes: u32) {
        *self.per_link.entry((src, dst)).or_insert(0) += bytes as u64;
    }

    /// Resolve a label to its interned index via the pointer table
    /// (inserting on first sight). Cold relative to `record`'s cache hit,
    /// but still allocation-free except when a genuinely new kind appears.
    fn kind_slot(&mut self, kind: &'static str) -> u32 {
        if self.ptr_index.is_empty() {
            self.ptr_index = vec![PTR_EMPTY; 64];
        }
        let ptr = kind.as_ptr() as usize;
        let hash = crate::random::mix64(ptr as u64 ^ ((kind.len() as u64) << 48));
        let mask = self.ptr_index.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.ptr_index[i];
            if slot.ptr == ptr && slot.len as usize == kind.len() {
                return slot.idx;
            }
            if slot.ptr == 0 {
                // First sight of this pointer: alias to an existing label
                // with equal content, or intern a new one.
                let idx = self.intern_name(kind);
                self.ptr_index[i] = PtrSlot {
                    ptr,
                    len: kind.len() as u32,
                    idx,
                };
                self.ptr_used += 1;
                if self.ptr_used * 8 >= self.ptr_index.len() * 7 {
                    self.grow_ptr_index();
                }
                return idx;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow_ptr_index(&mut self) {
        let new_cap = self.ptr_index.len() * 2;
        let old = std::mem::replace(&mut self.ptr_index, vec![PTR_EMPTY; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if slot.ptr == 0 {
                continue;
            }
            let hash = crate::random::mix64(slot.ptr as u64 ^ ((slot.len as u64) << 48));
            let mut i = (hash as usize) & mask;
            while self.ptr_index[i].ptr != 0 {
                i = (i + 1) & mask;
            }
            self.ptr_index[i] = slot;
        }
    }

    /// Add a whole pre-aggregated class counter (reference-engine stats
    /// conversion).
    pub(crate) fn add_class_counter(&mut self, class: TrafficClass, counter: ClassCounter) {
        let c = &mut self.per_class[class.index()];
        c.messages += counter.messages;
        c.hops += counter.hops;
        c.bytes += counter.bytes;
    }

    /// Add a whole pre-aggregated kind counter (reference-engine stats
    /// conversion), merging by content.
    pub(crate) fn add_kind_counter(&mut self, kind: &'static str, counter: ClassCounter) {
        let idx = self.intern_name(kind) as usize;
        self.kind_counts[idx].messages += counter.messages;
        self.kind_counts[idx].hops += counter.hops;
        self.kind_counts[idx].bytes += counter.bytes;
    }

    /// Add pre-aggregated per-link bytes (reference-engine stats conversion
    /// and parallel-shard merging).
    pub(crate) fn add_link_bytes(&mut self, src: u32, dst: u32, bytes: u64) {
        *self.per_link.entry((src, dst)).or_insert(0) += bytes;
    }

    /// Find-or-create the counter index for a label by *content*.
    fn intern_name(&mut self, kind: &'static str) -> u32 {
        if let Some(i) = self.kind_names.iter().position(|&n| n == kind) {
            return i as u32;
        }
        self.kind_names.push(kind);
        self.kind_counts.push(ClassCounter::default());
        (self.kind_names.len() - 1) as u32
    }

    /// Counter for one class.
    pub fn class(&self, class: TrafficClass) -> ClassCounter {
        self.per_class[class.index()]
    }

    /// Counter for one message kind.
    pub fn kind(&self, kind: &str) -> ClassCounter {
        self.kind_names
            .iter()
            .position(|&n| n == kind)
            .map(|i| self.kind_counts[i])
            .unwrap_or_default()
    }

    /// Iterate over the per-kind breakdown (sorted by kind name).
    pub fn kinds(&self) -> impl Iterator<Item = (&str, ClassCounter)> {
        let mut order: Vec<usize> = (0..self.kind_names.len()).collect();
        order.sort_by_key(|&i| self.kind_names[i]);
        order
            .into_iter()
            .map(move |i| (self.kind_names[i], self.kind_counts[i]))
    }

    /// Total hops attributable to mobility management ("overhead caused by
    /// mobile clients" in the paper's metric).
    pub fn mobility_hops(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .filter(|c| c.is_mobility())
            .map(|c| self.per_class[c.index()].hops)
            .sum()
    }

    /// Total messages attributable to mobility management.
    pub fn mobility_messages(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .filter(|c| c.is_mobility())
            .map(|c| self.per_class[c.index()].messages)
            .sum()
    }

    /// Total hops over all network classes.
    pub fn total_hops(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .filter(|c| c.is_network())
            .map(|c| self.per_class[c.index()].hops)
            .sum()
    }

    /// Total messages over all network classes.
    pub fn total_messages(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .filter(|c| c.is_network())
            .map(|c| self.per_class[c.index()].messages)
            .sum()
    }

    /// Total modeled bytes-on-wire over all network classes (0 when the
    /// workload does not model payloads).
    pub fn total_bytes(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .filter(|c| c.is_network())
            .map(|c| self.per_class[c.index()].bytes)
            .sum()
    }

    /// Iterate over per-link bytes-on-wire (sorted by `(src, dst)` — the
    /// map is a `BTreeMap`, so the order is deterministic).
    pub fn per_link(&self) -> impl Iterator<Item = ((u32, u32), u64)> + '_ {
        self.per_link.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of directed links that carried modeled payload bytes.
    pub fn links_with_bytes(&self) -> usize {
        self.per_link.len()
    }

    /// Merge another stats collector into this one (used when aggregating
    /// across repeated runs of the same experiment point). Kind counters
    /// merge by label content.
    pub fn merge(&mut self, other: &TrafficStats) {
        for class in TrafficClass::ALL {
            let c = &mut self.per_class[class.index()];
            let o = other.per_class[class.index()];
            c.messages += o.messages;
            c.hops += o.hops;
            c.bytes += o.bytes;
        }
        for (i, &name) in other.kind_names.iter().enumerate() {
            let idx = self.intern_name(name) as usize;
            let o = other.kind_counts[i];
            self.kind_counts[idx].messages += o.messages;
            self.kind_counts[idx].hops += o.hops;
            self.kind_counts[idx].bytes += o.bytes;
        }
        for (&(src, dst), &bytes) in other.per_link.iter() {
            *self.per_link.entry((src, dst)).or_insert(0) += bytes;
        }
        self.deliveries += other.deliveries;
    }
}

/// Deterministic, content-keyed rendering: classes in declaration order
/// (non-zero only), kinds sorted by name — independent of interner layout.
impl std::fmt::Debug for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        struct Classes<'a>(&'a TrafficStats);
        impl std::fmt::Debug for Classes<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                let mut m = f.debug_map();
                for class in TrafficClass::ALL {
                    let c = self.0.per_class[class.index()];
                    if c != ClassCounter::default() {
                        m.entry(&class, &c);
                    }
                }
                m.finish()
            }
        }
        struct Kinds<'a>(&'a TrafficStats);
        impl std::fmt::Debug for Kinds<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_map().entries(self.0.kinds()).finish()
            }
        }
        let mut s = f.debug_struct("TrafficStats");
        s.field("deliveries", &self.deliveries)
            .field("per_class", &Classes(self))
            .field("per_kind", &Kinds(self));
        // Rendered only when payload bytes were actually recorded, so the
        // Debug output (pinned by equivalence suites) is unchanged for
        // workloads without payload modeling.
        if !self.per_link.is_empty() {
            s.field("per_link", &self.per_link);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_class_and_kind() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::MobilityControl, "sub_migration", 1, 0);
        s.record(TrafficClass::MobilityControl, "sub_migration", 1, 0);
        s.record(TrafficClass::MobilityTransfer, "pq_transfer", 5, 0);
        s.record(TrafficClass::EventRouting, "forward", 1, 0);

        assert_eq!(s.class(TrafficClass::MobilityControl).messages, 2);
        assert_eq!(s.class(TrafficClass::MobilityControl).hops, 2);
        assert_eq!(s.kind("pq_transfer").hops, 5);
        assert_eq!(s.mobility_hops(), 7);
        assert_eq!(s.mobility_messages(), 3);
        assert_eq!(s.total_hops(), 8);
        assert_eq!(s.total_messages(), 4);
    }

    #[test]
    fn timers_never_count_as_network_traffic() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::Timer, "timer", 0, 0);
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_hops(), 0);
        assert!(!TrafficClass::Timer.is_network());
    }

    #[test]
    fn mobility_classification() {
        assert!(TrafficClass::MobilityControl.is_mobility());
        assert!(TrafficClass::MobilityTransfer.is_mobility());
        assert!(!TrafficClass::EventRouting.is_mobility());
        assert!(!TrafficClass::Subscription.is_mobility());
        assert!(!TrafficClass::EventDelivery.is_mobility());
    }

    #[test]
    fn class_indices_cover_every_class_once() {
        let mut seen = [false; TrafficClass::COUNT];
        for class in TrafficClass::ALL {
            assert!(!seen[class.index()], "duplicate index {}", class.index());
            seen[class.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::EventRouting, "forward", 3, 0);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::EventRouting, "forward", 4, 0);
        b.record(TrafficClass::MobilityControl, "handoff_request", 6, 0);
        b.deliveries = 10;
        a.merge(&b);
        assert_eq!(a.class(TrafficClass::EventRouting).hops, 7);
        assert_eq!(a.kind("forward").hops, 7, "kinds merge by content");
        assert_eq!(a.mobility_hops(), 6);
        assert_eq!(a.deliveries, 10);
    }

    #[test]
    fn unknown_kind_is_zero() {
        let s = TrafficStats::new();
        assert_eq!(s.kind("nope"), ClassCounter::default());
        assert_eq!(
            s.class(TrafficClass::EventDelivery),
            ClassCounter::default()
        );
    }

    #[test]
    fn kinds_iterate_sorted_by_name() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::EventRouting, "zeta", 1, 0);
        s.record(TrafficClass::EventRouting, "alpha", 2, 0);
        s.record(TrafficClass::EventRouting, "mid", 3, 0);
        s.record(TrafficClass::EventRouting, "alpha", 2, 0);
        let names: Vec<&str> = s.kinds().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(s.kind("alpha").messages, 2);
    }

    /// Equal label content at *different* static addresses must land in one
    /// counter — the interner aliases pointers by content on first sight.
    #[test]
    fn distinct_pointers_with_equal_content_share_a_counter() {
        // Two separate statics with identical content; the optimizer may or
        // may not pool them, so exercise both possibilities via subslicing
        // (guaranteed-distinct addresses inside one literal).
        static A: &str = "xforwardx";
        let first: &'static str = &A[1..8]; // "forward" at offset 1
        static B: &str = "forwardyy";
        let second: &'static str = &B[0..7]; // "forward" at offset 0
        assert!(!std::ptr::eq(first.as_ptr(), second.as_ptr()));
        let mut s = TrafficStats::new();
        s.record(TrafficClass::EventRouting, first, 1, 0);
        s.record(TrafficClass::EventRouting, second, 2, 0);
        assert_eq!(s.kind("forward").messages, 2);
        assert_eq!(s.kind("forward").hops, 3);
        assert_eq!(s.kinds().count(), 1);
    }

    /// Interning many distinct kinds forces the pointer table to grow and
    /// must not lose or double-count anything.
    #[test]
    fn interner_survives_growth() {
        // 80 distinct &'static str labels without leaking: windows of one
        // big static at distinct offsets and two distinct lengths.
        static BIG: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
        let mut s = TrafficStats::new();
        let mut labels: Vec<&'static str> = Vec::new();
        for i in 0..40usize {
            labels.push(&BIG[i..i + 3]);
            labels.push(&BIG[i..i + 4]);
        }
        for &label in &labels {
            s.record(TrafficClass::EventRouting, label, 1, 0);
            s.record(TrafficClass::EventRouting, label, 1, 0);
        }
        for label in labels {
            assert_eq!(s.kind(label).messages, 2, "label {label}");
        }
        assert_eq!(s.class(TrafficClass::EventRouting).messages, 160);
        assert_eq!(s.kinds().count(), 80);
    }

    #[test]
    fn debug_output_is_content_keyed_and_deterministic() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::EventRouting, "beta", 1, 0);
        a.record(TrafficClass::Timer, "alpha", 0, 0);
        let mut b = TrafficStats::new();
        // Same content, different record order → same Debug rendering.
        b.record(TrafficClass::Timer, "alpha", 0, 0);
        b.record(TrafficClass::EventRouting, "beta", 1, 0);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(format!("{a:?}").contains("alpha"));
    }
}
