//! Deterministic random-number utilities.
//!
//! Every experiment in the reproduction must be exactly replayable from a
//! single `u64` seed: the delivery-reliability checkers compare the set of
//! published events against the set of delivered events, and that comparison
//! is only meaningful when the workload is a pure function of the seed.
//!
//! We implement a small, well-known generator (xoshiro256**, seeded through
//! splitmix64) rather than relying on `rand`'s default generator so that the
//! stream is stable across dependency upgrades. The `rand` crate is still
//! used elsewhere (property tests, examples); this module is the source of
//! randomness for workload generation and mobility schedules.

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

/// Expand a 64-bit seed into a well-mixed state word (splitmix64 step).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One splitmix64 step over a standalone key: turns a structured word into a
/// uniform-looking one in a handful of instructions. Shared by the jittered
/// fabric's per-message sampling and the engine's link-clock hasher — both
/// hot paths where constructing a full [`DetRng`] would dominate.
pub(crate) fn mix64(key: u64) -> u64 {
    let mut s = key;
    splitmix64(&mut s)
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derive an independent child generator; used to give every mobile
    /// client its own stream so that changing one client's schedule does not
    /// perturb the others.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires a non-zero bound");
        // Lemire-style rejection-free multiply-shift is fine here; bias is
        // negligible for the bounds we use (< 2^32), but we do a widening
        // multiply reduction which keeps the distribution very close to
        // uniform.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)` (half-open).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_below(hi - lo)
    }

    /// Uniform double in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Sample an exponential random variable with the given mean
    /// (the distribution the paper uses for connection and disconnection
    /// period lengths, Section 5.1).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; guard the log argument away from zero.
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Return `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.is_empty() {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose `k` distinct indices out of `0..n` (k ≤ n), in random order.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} items out of {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(12345);
        let mut b = DetRng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::new(9);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::new(42);
        let mean = 300.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = DetRng::new(11);
        for _ in 0..1_000 {
            assert!(rng.exponential(5.0) >= 0.0);
        }
    }

    #[test]
    fn choose_indices_are_distinct_and_in_range() {
        let mut rng = DetRng::new(3);
        let picked = rng.choose_indices(50, 10);
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(picked.iter().all(|&i| i < 50));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent_of_parent_future() {
        let mut parent = DetRng::new(77);
        let mut child = parent.fork(1);
        let child_first = child.next_u64();
        // Consuming more of the parent must not change the already-created
        // child's stream.
        let _ = parent.next_u64();
        let mut child2 = DetRng::new(77).fork(1);
        assert_eq!(child_first, child2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(100);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0 + 1e-9)));
    }
}
