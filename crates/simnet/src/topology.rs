//! Network topology: the k×k base-station grid, minimum spanning tree
//! overlay, shortest-path distances and per-broker routing tables.
//!
//! The paper's experiment setup (Section 5.1):
//!
//! > "we simulated a wireless network with k² base stations organized into
//! > cells [...] The base stations are organized into k rows with each row
//! > containing k stations. Each base station directly connects to its
//! > neighboring stations with wired links. Any pair of stations can connect
//! > with each other via the shortest path in the network. [...] each base
//! > station acts as an event broker and a minimum cost spanning tree of the
//! > network is built to serve as the acyclic overlay."
//!
//! Two distance notions therefore co-exist and are both provided by
//! [`Network`]:
//!
//! * **grid distance** — shortest path in the physical wired network; it
//!   determines latency and hop cost of *point-to-point* broker messages
//!   (handoff requests, queue transfers, home-broker forwarding);
//! * **tree structure** — the acyclic overlay used by reverse-path-forwarding
//!   event routing and by MHH's hop-by-hop subscription migration.

use std::collections::BinaryHeap;

use crate::random::DetRng;

/// An undirected weighted graph with dense `usize` node indices.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<(usize, u64)>>,
}

impl Graph {
    /// An empty graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add an undirected edge with the given weight. Panics on out-of-range
    /// endpoints or self loops (the broker overlay is simple).
    pub fn add_edge(&mut self, a: usize, b: usize, weight: u64) {
        assert!(a < self.n && b < self.n, "edge endpoint out of range");
        assert_ne!(a, b, "self loops are not allowed");
        self.adj[a].push((b, weight));
        self.adj[b].push((a, weight));
    }

    /// Neighbors (and edge weights) of a node.
    pub fn neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adj[v]
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Build the k×k grid of base stations with unit-weight wired links
    /// between horizontally and vertically adjacent stations.
    pub fn grid(k: usize) -> Self {
        assert!(k >= 1, "grid needs at least one station");
        let n = k * k;
        let mut g = Graph::with_nodes(n);
        for row in 0..k {
            for col in 0..k {
                let v = row * k + col;
                if col + 1 < k {
                    g.add_edge(v, v + 1, 1);
                }
                if row + 1 < k {
                    g.add_edge(v, v + k, 1);
                }
            }
        }
        g
    }

    /// Build the k×k grid but perturb edge weights deterministically from a
    /// seed. With unit weights every spanning tree of the grid is minimal;
    /// the perturbation makes the "minimum cost spanning tree" of the paper a
    /// specific, seed-dependent tree so that different runs exercise
    /// different overlays while remaining replayable.
    pub fn grid_jittered(k: usize, seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let n = k * k;
        let mut g = Graph::with_nodes(n);
        for row in 0..k {
            for col in 0..k {
                let v = row * k + col;
                if col + 1 < k {
                    g.add_edge(v, v + 1, 1_000 + rng.next_below(64));
                }
                if row + 1 < k {
                    g.add_edge(v, v + k, 1_000 + rng.next_below(64));
                }
            }
        }
        g
    }

    /// Hop-count (unweighted) breadth-first distances from `src` to all
    /// nodes. Unreachable nodes get `u32::MAX`.
    pub fn bfs_distances(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &(w, _) in &self.adj[v] {
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// All-pairs hop-count distances (BFS from every node). Quadratic in the
    /// node count, which is fine at the paper's scales (≤ 196 brokers).
    pub fn all_pairs_hops(&self) -> Vec<Vec<u32>> {
        (0..self.n).map(|v| self.bfs_distances(v)).collect()
    }

    /// True if every node is reachable from node 0 (or the graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != u32::MAX)
    }

    /// Compute a minimum spanning tree with Prim's algorithm, returning the
    /// tree as an adjacency structure. Panics if the graph is not connected.
    pub fn minimum_spanning_tree(&self) -> Tree {
        assert!(self.n > 0, "cannot build an MST of an empty graph");
        let mut in_tree = vec![false; self.n];
        let mut parent: Vec<Option<usize>> = vec![None; self.n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        // (Reverse(weight), tie-break node, from) — deterministic tie-breaks.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize, usize)>> = BinaryHeap::new();
        in_tree[0] = true;
        let mut added = 1usize;
        for &(w, weight) in &self.adj[0] {
            heap.push(std::cmp::Reverse((weight, w, 0)));
        }
        while let Some(std::cmp::Reverse((weight, v, from))) = heap.pop() {
            let _ = weight;
            if in_tree[v] {
                continue;
            }
            in_tree[v] = true;
            added += 1;
            parent[v] = Some(from);
            adj[from].push(v);
            adj[v].push(from);
            for &(w, wt) in &self.adj[v] {
                if !in_tree[w] {
                    heap.push(std::cmp::Reverse((wt, w, v)));
                }
            }
        }
        assert_eq!(added, self.n, "graph must be connected to span it");
        Tree { parent, adj }
    }
}

/// A rooted spanning tree over the broker graph — the acyclic overlay of the
/// pub/sub system.
#[derive(Debug, Clone)]
pub struct Tree {
    parent: Vec<Option<usize>>,
    adj: Vec<Vec<usize>>,
}

impl Tree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Tree neighbors of a node.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Parent of a node in the rooted representation (root has `None`).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Total number of tree edges (always `len() - 1` for a spanning tree).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Hop distances from `src` over the tree.
    pub fn distances_from(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// For a node `src`, compute the next tree hop toward every destination.
    /// `next[dst]` is `src` itself when `dst == src`.
    pub fn next_hops_from(&self, src: usize) -> Vec<usize> {
        let n = self.len();
        let mut next = vec![src; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[src] = true;
        // Seed the frontier: everything reached through neighbor `nb` keeps
        // `nb` as its first hop.
        for &nb in &self.adj[src] {
            visited[nb] = true;
            next[nb] = nb;
            queue.push_back(nb);
        }
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if !visited[w] {
                    visited[w] = true;
                    next[w] = next[v];
                    queue.push_back(w);
                }
            }
        }
        next
    }

    /// The unique tree path from `a` to `b`, inclusive of both endpoints.
    pub fn path(&self, a: usize, b: usize) -> Vec<usize> {
        if a == b {
            return vec![a];
        }
        // BFS from b recording predecessors, then walk from a.
        let n = self.len();
        let mut pred = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        pred[b] = b;
        queue.push_back(b);
        while let Some(v) = queue.pop_front() {
            if v == a {
                break;
            }
            for &w in &self.adj[v] {
                if pred[w] == usize::MAX {
                    pred[w] = v;
                    queue.push_back(w);
                }
            }
        }
        assert_ne!(pred[a], usize::MAX, "tree must be connected");
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            cur = pred[cur];
            path.push(cur);
        }
        path
    }

    /// The largest pairwise hop distance over the tree. This is the quantity
    /// the sub-unsub protocol's safety interval is derived from (paper,
    /// Section 5.1: "the maximum time for message delivery between any two
    /// stations").
    pub fn diameter(&self) -> u32 {
        (0..self.len())
            .map(|v| {
                self.distances_from(v)
                    .into_iter()
                    .filter(|&d| d != u32::MAX)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }
}

/// A fully pre-processed broker network: physical grid + overlay tree +
/// distance tables + per-broker routing tables.
#[derive(Debug, Clone)]
pub struct Network {
    /// Grid side length (k).
    pub side: usize,
    /// The physical wired graph.
    pub graph: Graph,
    /// The acyclic overlay (minimum spanning tree of the grid).
    pub tree: Tree,
    /// All-pairs hop distances over the physical grid.
    pub grid_dist: Vec<Vec<u32>>,
    /// All-pairs hop distances over the overlay tree.
    pub tree_dist: Vec<Vec<u32>>,
    /// `routing[src][dst]` = the overlay neighbor of `src` that is the next
    /// hop toward `dst` (equal to `src` when `dst == src`). This is the
    /// "routing table for the broker overlay network" of Section 3.
    pub routing: Vec<Vec<usize>>,
}

impl Network {
    /// Build a k×k broker network with a deterministic, seed-dependent MST
    /// overlay.
    pub fn grid(k: usize, seed: u64) -> Self {
        let graph = Graph::grid_jittered(k, seed);
        Self::from_graph(k, graph)
    }

    /// Build from an arbitrary connected graph (used by tests and the
    /// quickstart example for tiny hand-made topologies). `side` is kept for
    /// reporting only.
    pub fn from_graph(side: usize, graph: Graph) -> Self {
        assert!(graph.is_connected(), "broker network must be connected");
        let tree = graph.minimum_spanning_tree();
        let grid_dist = graph.all_pairs_hops();
        let tree_dist: Vec<Vec<u32>> = (0..tree.len()).map(|v| tree.distances_from(v)).collect();
        let routing: Vec<Vec<usize>> = (0..tree.len()).map(|v| tree.next_hops_from(v)).collect();
        Network {
            side,
            graph,
            tree,
            grid_dist,
            tree_dist,
            routing,
        }
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.graph.len()
    }

    /// Hop distance between two brokers over the physical grid.
    pub fn grid_distance(&self, a: usize, b: usize) -> u32 {
        self.grid_dist[a][b]
    }

    /// Hop distance between two brokers over the overlay tree.
    pub fn tree_distance(&self, a: usize, b: usize) -> u32 {
        self.tree_dist[a][b]
    }

    /// Next overlay hop from `src` toward `dst`.
    pub fn next_hop(&self, src: usize, dst: usize) -> usize {
        self.routing[src][dst]
    }

    /// The unique overlay path between two brokers.
    pub fn tree_path(&self, a: usize, b: usize) -> Vec<usize> {
        self.tree.path(a, b)
    }

    /// Maximum pairwise grid distance.
    pub fn grid_diameter(&self) -> u32 {
        self.grid_dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Maximum pairwise overlay distance.
    pub fn tree_diameter(&self) -> u32 {
        self.tree_dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Average pairwise grid distance over distinct broker pairs.
    pub fn average_grid_distance(&self) -> f64 {
        let n = self.broker_count();
        if n < 2 {
            return 0.0;
        }
        let total: u64 = self
            .grid_dist
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().filter(move |(j, _)| *j > i))
            .map(|(_, &d)| d as u64)
            .sum();
        total as f64 / (n * (n - 1) / 2) as f64
    }

    /// Average pairwise overlay distance over distinct broker pairs.
    pub fn average_tree_distance(&self) -> f64 {
        let n = self.broker_count();
        if n < 2 {
            return 0.0;
        }
        let total: u64 = self
            .tree_dist
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().filter(move |(j, _)| *j > i))
            .map(|(_, &d)| d as u64)
            .sum();
        total as f64 / (n * (n - 1) / 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_shape() {
        let g = Graph::grid(4);
        assert_eq!(g.len(), 16);
        // 2 * k * (k - 1) edges in a k×k grid
        assert_eq!(g.edge_count(), 24);
        assert!(g.is_connected());
        // Corner has 2 neighbors, centre has 4.
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(5).len(), 4);
    }

    #[test]
    fn bfs_distance_is_manhattan_on_grid() {
        let g = Graph::grid(5);
        let d = g.bfs_distances(0);
        // node (r, c) has index r*5+c; manhattan distance from (0,0)
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(d[r * 5 + c], (r + c) as u32);
            }
        }
    }

    #[test]
    fn mst_spans_and_is_acyclic() {
        let g = Graph::grid_jittered(6, 99);
        let t = g.minimum_spanning_tree();
        assert_eq!(t.len(), 36);
        assert_eq!(t.edge_count(), 35);
        // Connected: every node reachable from 0.
        assert!(t.distances_from(0).iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn tree_path_endpoints_and_adjacency() {
        let net = Network::grid(5, 7);
        let p = net.tree_path(0, 24);
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 24);
        for w in p.windows(2) {
            assert!(net.tree.neighbors(w[0]).contains(&w[1]));
        }
        assert_eq!(p.len() as u32 - 1, net.tree_distance(0, 24));
    }

    #[test]
    fn next_hop_lies_on_tree_path() {
        let net = Network::grid(6, 3);
        for src in 0..net.broker_count() {
            for dst in 0..net.broker_count() {
                if src == dst {
                    assert_eq!(net.next_hop(src, dst), src);
                    continue;
                }
                let hop = net.next_hop(src, dst);
                let path = net.tree_path(src, dst);
                assert_eq!(path[1], hop, "next hop must be second node on the path");
            }
        }
    }

    #[test]
    fn tree_distance_at_least_grid_distance() {
        let net = Network::grid(7, 11);
        for a in 0..net.broker_count() {
            for b in 0..net.broker_count() {
                assert!(net.tree_distance(a, b) >= net.grid_distance(a, b));
            }
        }
    }

    #[test]
    fn diameters_and_averages_are_sane() {
        let net = Network::grid(10, 1);
        assert_eq!(net.grid_diameter(), 18); // (k-1)*2 for a grid
        assert!(net.tree_diameter() >= net.grid_diameter());
        let avg_grid = net.average_grid_distance();
        let avg_tree = net.average_tree_distance();
        assert!(avg_grid > 0.0 && avg_grid < net.grid_diameter() as f64);
        assert!(avg_tree >= avg_grid);
        assert!(avg_tree <= net.tree_diameter() as f64);
    }

    #[test]
    fn single_node_network_works() {
        let g = Graph::grid(1);
        let net = Network::from_graph(1, g);
        assert_eq!(net.broker_count(), 1);
        assert_eq!(net.tree_path(0, 0), vec![0]);
        assert_eq!(net.grid_diameter(), 0);
        assert_eq!(net.average_grid_distance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_rejected() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(1, 1, 1);
    }

    #[test]
    fn jittered_grids_differ_by_seed_but_not_shape() {
        let a = Network::grid(6, 1);
        let b = Network::grid(6, 2);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        // Overlay trees usually differ across seeds; distances over the grid
        // must be identical because weights only perturb tree choice.
        assert_eq!(a.grid_dist, b.grid_dist);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Network::grid(8, 5);
        let b = Network::grid(8, 5);
        assert_eq!(a.tree_dist, b.tree_dist);
        assert_eq!(a.routing, b.routing);
    }
}
