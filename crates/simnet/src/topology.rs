//! Network topology: the pluggable [`TopologyKind`] family (the paper's k×k
//! base-station grid plus torus, random-geometric, scale-free and imported
//! edge lists), minimum spanning tree overlay, shortest-path distances and
//! per-broker routing tables.
//!
//! The paper's experiment setup (Section 5.1):
//!
//! > "we simulated a wireless network with k² base stations organized into
//! > cells [...] The base stations are organized into k rows with each row
//! > containing k stations. Each base station directly connects to its
//! > neighboring stations with wired links. Any pair of stations can connect
//! > with each other via the shortest path in the network. [...] each base
//! > station acts as an event broker and a minimum cost spanning tree of the
//! > network is built to serve as the acyclic overlay."
//!
//! Two distance notions therefore co-exist and are both provided by
//! [`Network`]:
//!
//! * **grid distance** — shortest path in the physical wired network; it
//!   determines latency and hop cost of *point-to-point* broker messages
//!   (handoff requests, queue transfers, home-broker forwarding);
//! * **tree structure** — the acyclic overlay used by reverse-path-forwarding
//!   event routing and by MHH's hop-by-hop subscription migration.
//!
//! Every [`TopologyKind`] builds deterministically from `(side, seed)`; the
//! MST overlay, the all-pairs distance tables and the routing tables are
//! computed **once** at [`Network`] construction and shared (`Arc`) between
//! the workload generator, the fabric and the deployment for the whole run.

use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::random::DetRng;

/// An undirected weighted graph with dense `usize` node indices.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<(usize, u64)>>,
}

impl Graph {
    /// An empty graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add an undirected edge with the given weight. Panics on out-of-range
    /// endpoints or self loops (the broker overlay is simple).
    pub fn add_edge(&mut self, a: usize, b: usize, weight: u64) {
        assert!(a < self.n && b < self.n, "edge endpoint out of range");
        assert_ne!(a, b, "self loops are not allowed");
        self.adj[a].push((b, weight));
        self.adj[b].push((a, weight));
    }

    /// Neighbors (and edge weights) of a node.
    pub fn neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adj[v]
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Build the k×k grid of base stations with unit-weight wired links
    /// between horizontally and vertically adjacent stations.
    pub fn grid(k: usize) -> Self {
        assert!(k >= 1, "grid needs at least one station");
        let n = k * k;
        let mut g = Graph::with_nodes(n);
        for row in 0..k {
            for col in 0..k {
                let v = row * k + col;
                if col + 1 < k {
                    g.add_edge(v, v + 1, 1);
                }
                if row + 1 < k {
                    g.add_edge(v, v + k, 1);
                }
            }
        }
        g
    }

    /// Build the k×k grid but perturb edge weights deterministically from a
    /// seed. With unit weights every spanning tree of the grid is minimal;
    /// the perturbation makes the "minimum cost spanning tree" of the paper a
    /// specific, seed-dependent tree so that different runs exercise
    /// different overlays while remaining replayable.
    pub fn grid_jittered(k: usize, seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let n = k * k;
        let mut g = Graph::with_nodes(n);
        for row in 0..k {
            for col in 0..k {
                let v = row * k + col;
                if col + 1 < k {
                    g.add_edge(v, v + 1, 1_000 + rng.next_below(64));
                }
                if row + 1 < k {
                    g.add_edge(v, v + k, 1_000 + rng.next_below(64));
                }
            }
        }
        g
    }

    /// Build the k×k **torus**: the jittered grid plus wrap-around edges
    /// joining the first and last station of every row and column (so every
    /// station has degree 4 and the diameter halves). Wrap edges are only
    /// added for `k >= 3`; below that they would duplicate existing edges.
    pub fn torus_jittered(k: usize, seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ 0x546f_7275_735f_4d48);
        let n = k * k;
        let mut g = Graph::with_nodes(n);
        let w = |rng: &mut DetRng| 1_000 + rng.next_below(64);
        for row in 0..k {
            for col in 0..k {
                let v = row * k + col;
                if col + 1 < k {
                    g.add_edge(v, v + 1, w(&mut rng));
                }
                if row + 1 < k {
                    g.add_edge(v, v + k, w(&mut rng));
                }
            }
        }
        if k >= 3 {
            for row in 0..k {
                g.add_edge(row * k, row * k + (k - 1), w(&mut rng));
            }
            for col in 0..k {
                g.add_edge(col, (k - 1) * k + col, w(&mut rng));
            }
        }
        g
    }

    /// Build a **random-geometric** (ad-hoc / PSVR-style) network: `n`
    /// stations dropped uniformly in the unit square, wired when within the
    /// connection radius implied by `target_degree` (expected neighbors per
    /// station). Components left disconnected by the radius are stitched
    /// through their closest cross-component pair, so the result is always
    /// connected. Edge weights are the scaled Euclidean distances, making
    /// the MST overlay geometrically meaningful.
    pub fn random_geometric(n: usize, target_degree: f64, seed: u64) -> Self {
        assert!(n >= 1, "random-geometric needs at least one station");
        let mut rng = DetRng::new(seed ^ 0x5247_475f_4d48_4821);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        let mut g = Graph::with_nodes(n);
        let dist =
            |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        let weight = |d: f64| ((d * 10_000.0).round() as u64).max(1);
        if n > 1 {
            let r = (target_degree.max(0.5) / (std::f64::consts::PI * (n - 1) as f64)).sqrt();
            for a in 0..n {
                for b in (a + 1)..n {
                    let d = dist(pts[a], pts[b]);
                    if d <= r {
                        g.add_edge(a, b, weight(d));
                    }
                }
            }
            // Stitch: repeatedly connect the component of node 0 to its
            // closest outside station until everything is reachable.
            loop {
                let reach = g.bfs_distances(0);
                if reach.iter().all(|&d| d != u32::MAX) {
                    break;
                }
                let mut best: Option<(usize, usize, f64)> = None;
                for a in (0..n).filter(|&a| reach[a] != u32::MAX) {
                    for b in (0..n).filter(|&b| reach[b] == u32::MAX) {
                        let d = dist(pts[a], pts[b]);
                        if best.is_none_or(|(_, _, bd)| d < bd) {
                            best = Some((a, b, d));
                        }
                    }
                }
                let (a, b, d) = best.expect("disconnected graph has a crossing pair");
                g.add_edge(a, b, weight(d));
            }
        }
        g
    }

    /// Build a **scale-free** (Barabási–Albert) network: start from a clique
    /// of `m + 1` stations, then attach each new station to `m` distinct
    /// existing stations chosen with probability proportional to their
    /// degree (preferential attachment). Connected by construction; produces
    /// the hub-dominated degree distribution of real broker backbones.
    pub fn scale_free(n: usize, m: usize, seed: u64) -> Self {
        assert!(n >= 1, "scale-free needs at least one station");
        let m = m.clamp(1, n.saturating_sub(1).max(1));
        let mut rng = DetRng::new(seed ^ 0x5343_4146_5245_4521);
        let mut g = Graph::with_nodes(n);
        let w = |rng: &mut DetRng| 1_000 + rng.next_below(64);
        // Degree-weighted endpoint pool: every edge contributes both ends.
        let mut pool: Vec<usize> = Vec::new();
        let core = (m + 1).min(n);
        for a in 0..core {
            for b in (a + 1)..core {
                g.add_edge(a, b, w(&mut rng));
                pool.push(a);
                pool.push(b);
            }
        }
        for v in core..n {
            let mut targets = std::collections::BTreeSet::new();
            // The pool always holds >= m distinct nodes (the initial clique),
            // so rejection sampling terminates; cap the spins defensively and
            // fall back to a scan for pathological pools.
            let mut spins = 0usize;
            while targets.len() < m && spins < 64 * m {
                targets.insert(pool[rng.index(pool.len())]);
                spins += 1;
            }
            for u in 0..v {
                if targets.len() >= m {
                    break;
                }
                targets.insert(u);
            }
            for &t in &targets {
                g.add_edge(v, t, w(&mut rng));
                pool.push(v);
                pool.push(t);
            }
        }
        g
    }

    /// Build a network from an imported undirected edge list. Self-loops and
    /// duplicate pairs are skipped (imported data is input, not a model
    /// bug); node count is the largest endpoint + 1. Edge weights carry the
    /// same deterministic perturbation as the grid, so the MST overlay is a
    /// specific, seed-dependent tree.
    pub fn from_edges(edges: &[(u32, u32)], seed: u64) -> Self {
        let n = edge_list_node_count(edges);
        let mut rng = DetRng::new(seed ^ 0x4544_4745_5f4c_4953);
        let mut g = Graph::with_nodes(n);
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in edges {
            let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
            if lo == hi || !seen.insert((lo, hi)) {
                continue;
            }
            g.add_edge(lo, hi, 1_000 + rng.next_below(64));
        }
        g
    }

    /// Hop-count (unweighted) breadth-first distances from `src` to all
    /// nodes. Unreachable nodes get `u32::MAX`.
    pub fn bfs_distances(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &(w, _) in &self.adj[v] {
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// All-pairs hop-count distances (BFS from every node). Quadratic in the
    /// node count, which is fine at the paper's scales (≤ 196 brokers).
    pub fn all_pairs_hops(&self) -> Vec<Vec<u32>> {
        (0..self.n).map(|v| self.bfs_distances(v)).collect()
    }

    /// True if every node is reachable from node 0 (or the graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != u32::MAX)
    }

    /// Compute a minimum spanning tree with Prim's algorithm, returning the
    /// tree as an adjacency structure. Panics if the graph is not connected.
    pub fn minimum_spanning_tree(&self) -> Tree {
        assert!(self.n > 0, "cannot build an MST of an empty graph");
        let mut in_tree = vec![false; self.n];
        let mut parent: Vec<Option<usize>> = vec![None; self.n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        // (Reverse(weight), tie-break node, from) — deterministic tie-breaks.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize, usize)>> = BinaryHeap::new();
        in_tree[0] = true;
        let mut added = 1usize;
        for &(w, weight) in &self.adj[0] {
            heap.push(std::cmp::Reverse((weight, w, 0)));
        }
        while let Some(std::cmp::Reverse((weight, v, from))) = heap.pop() {
            let _ = weight;
            if in_tree[v] {
                continue;
            }
            in_tree[v] = true;
            added += 1;
            parent[v] = Some(from);
            adj[from].push(v);
            adj[v].push(from);
            for &(w, wt) in &self.adj[v] {
                if !in_tree[w] {
                    heap.push(std::cmp::Reverse((wt, w, v)));
                }
            }
        }
        assert_eq!(added, self.n, "graph must be connected to span it");
        Tree { parent, adj }
    }
}

/// A rooted spanning tree over the broker graph — the acyclic overlay of the
/// pub/sub system.
#[derive(Debug, Clone)]
pub struct Tree {
    parent: Vec<Option<usize>>,
    adj: Vec<Vec<usize>>,
}

impl Tree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Tree neighbors of a node.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Parent of a node in the rooted representation (root has `None`).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Total number of tree edges (always `len() - 1` for a spanning tree).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Hop distances from `src` over the tree.
    pub fn distances_from(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// For a node `src`, compute the next tree hop toward every destination.
    /// `next[dst]` is `src` itself when `dst == src`.
    pub fn next_hops_from(&self, src: usize) -> Vec<usize> {
        let n = self.len();
        let mut next = vec![src; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[src] = true;
        // Seed the frontier: everything reached through neighbor `nb` keeps
        // `nb` as its first hop.
        for &nb in &self.adj[src] {
            visited[nb] = true;
            next[nb] = nb;
            queue.push_back(nb);
        }
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if !visited[w] {
                    visited[w] = true;
                    next[w] = next[v];
                    queue.push_back(w);
                }
            }
        }
        next
    }

    /// The unique tree path from `a` to `b`, inclusive of both endpoints.
    pub fn path(&self, a: usize, b: usize) -> Vec<usize> {
        if a == b {
            return vec![a];
        }
        // BFS from b recording predecessors, then walk from a.
        let n = self.len();
        let mut pred = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        pred[b] = b;
        queue.push_back(b);
        while let Some(v) = queue.pop_front() {
            if v == a {
                break;
            }
            for &w in &self.adj[v] {
                if pred[w] == usize::MAX {
                    pred[w] = v;
                    queue.push_back(w);
                }
            }
        }
        assert_ne!(pred[a], usize::MAX, "tree must be connected");
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            cur = pred[cur];
            path.push(cur);
        }
        path
    }

    /// The largest pairwise hop distance over the tree. This is the quantity
    /// the sub-unsub protocol's safety interval is derived from (paper,
    /// Section 5.1: "the maximum time for message delivery between any two
    /// stations").
    pub fn diameter(&self) -> u32 {
        (0..self.len())
            .map(|v| {
                self.distances_from(v)
                    .into_iter()
                    .filter(|&d| d != u32::MAX)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }
}

/// Which network shape a scenario runs on, with its parameters — the cheap,
/// cloneable *description* a configuration carries; [`build`] turns it into
/// a fully pre-processed [`Network`], deterministically from `(side, seed)`.
///
/// [`build`]: TopologyKind::build
#[derive(Debug, Clone, Default, PartialEq)]
pub enum TopologyKind {
    /// The paper's k×k wired grid (Section 5.1).
    #[default]
    Grid,
    /// The k×k grid with wrap-around edges (no edge stations, half the
    /// diameter).
    Torus,
    /// Stations dropped uniformly at random in the unit square, wired within
    /// the radius implied by the target mean degree — the irregular ad-hoc
    /// topology of the PSVR line of work.
    RandomGeometric {
        /// Expected number of neighbors per station (clamped to ≥ 0.5).
        target_degree: f64,
    },
    /// Barabási–Albert preferential attachment: hub-dominated broker
    /// backbones.
    ScaleFree {
        /// Edges each newly attached station brings (m).
        edges_per_node: usize,
    },
    /// An imported undirected edge list (node count = max endpoint + 1).
    /// The list must describe a **connected** graph: the broker overlay is
    /// a spanning tree, so [`build`](TopologyKind::build) panics (with the
    /// `"broker network must be connected"` message) on a disconnected
    /// import — validate external data before wiring it into a scenario.
    EdgeList(Arc<Vec<(u32, u32)>>),
    /// A hand-built graph supplied directly to [`Network::from_graph`];
    /// cannot be built from a description.
    Custom,
}

impl TopologyKind {
    /// Short machine-friendly label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Grid => "grid",
            TopologyKind::Torus => "torus",
            TopologyKind::RandomGeometric { .. } => "random-geometric",
            TopologyKind::ScaleFree { .. } => "scale-free",
            TopologyKind::EdgeList(_) => "edge-list",
            TopologyKind::Custom => "custom",
        }
    }

    /// Parse a kind by label, with default parameters (`random-geometric`
    /// targets degree 4, `scale-free` attaches 2 edges per station).
    /// Edge-list and custom topologies carry data and cannot be parsed.
    pub fn parse(name: &str) -> Option<TopologyKind> {
        match name {
            "grid" => Some(TopologyKind::Grid),
            "torus" => Some(TopologyKind::Torus),
            "random-geometric" => Some(TopologyKind::RandomGeometric { target_degree: 4.0 }),
            "scale-free" => Some(TopologyKind::ScaleFree { edges_per_node: 2 }),
            _ => None,
        }
    }

    /// The parseable labels, for error messages.
    pub fn names() -> &'static [&'static str] {
        &["grid", "torus", "random-geometric", "scale-free"]
    }

    /// Number of stations a build with this `side` produces. Grid-family
    /// and random shapes use `side²`; an edge list brings its own count.
    pub fn node_count(&self, side: usize) -> usize {
        match self {
            TopologyKind::EdgeList(edges) => edge_list_node_count(edges),
            _ => side * side,
        }
    }

    /// Build the physical graph of this kind.
    ///
    /// # Panics
    /// Panics on [`TopologyKind::Custom`] (hand-built graphs go through
    /// [`Network::from_graph`]) and on a disconnected edge list.
    pub fn build_graph(&self, side: usize, seed: u64) -> Graph {
        match self {
            TopologyKind::Grid => Graph::grid_jittered(side, seed),
            TopologyKind::Torus => Graph::torus_jittered(side, seed),
            TopologyKind::RandomGeometric { target_degree } => {
                Graph::random_geometric(side * side, *target_degree, seed)
            }
            TopologyKind::ScaleFree { edges_per_node } => {
                Graph::scale_free(side * side, *edges_per_node, seed)
            }
            TopologyKind::EdgeList(edges) => Graph::from_edges(edges, seed),
            TopologyKind::Custom => {
                panic!("custom topologies are built directly via Network::from_graph")
            }
        }
    }

    /// Build the fully pre-processed [`Network`] of this kind.
    pub fn build(&self, side: usize, seed: u64) -> Network {
        Network::from_graph_kind(side, self.build_graph(side, seed), self.clone())
    }
}

/// Display renders the *parameter point* (`scale-free(m=2)`), so swept
/// topologies stay distinguishable in reports; parameter-free kinds render
/// as their plain label.
impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyKind::RandomGeometric { target_degree } => {
                write!(f, "{}(deg={target_degree})", self.label())
            }
            TopologyKind::ScaleFree { edges_per_node } => {
                write!(f, "{}(m={edges_per_node})", self.label())
            }
            TopologyKind::EdgeList(edges) => write!(f, "{}(edges={})", self.label(), edges.len()),
            _ => f.write_str(self.label()),
        }
    }
}

/// Node count implied by an edge list (max endpoint + 1) — the one
/// definition shared by [`Graph::from_edges`] and
/// [`TopologyKind::node_count`], so the population sizing and the built
/// network can never disagree.
fn edge_list_node_count(edges: &[(u32, u32)]) -> usize {
    edges
        .iter()
        .map(|&(a, b)| a.max(b) as usize + 1)
        .max()
        .unwrap_or(0)
}

/// Parse an edge-list document: one `a b` pair per line, `#` comments and
/// blank lines ignored. Errors carry the 1-based line number.
pub fn parse_edge_list(text: &str) -> Result<Vec<(u32, u32)>, String> {
    let mut edges = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b), None) = (it.next(), it.next(), it.next()) else {
            return Err(format!("line {}: expected exactly `a b`", i + 1));
        };
        let a: u32 = a
            .parse()
            .map_err(|e| format!("line {}: bad endpoint {a:?}: {e}", i + 1))?;
        let b: u32 = b
            .parse()
            .map_err(|e| format!("line {}: bad endpoint {b:?}: {e}", i + 1))?;
        edges.push((a, b));
    }
    Ok(edges)
}

/// A fully pre-processed broker network: physical graph + overlay tree +
/// distance tables + per-broker routing tables, built once per run.
#[derive(Debug, Clone)]
pub struct Network {
    /// Grid side length (k) for the grid family; the side hint the build was
    /// asked for otherwise (0 for imported edge lists).
    pub side: usize,
    /// The shape this network was built from.
    pub kind: TopologyKind,
    /// The physical wired graph.
    pub graph: Graph,
    /// The acyclic overlay (minimum spanning tree of the physical graph).
    pub tree: Tree,
    /// All-pairs hop distances over the physical graph.
    pub grid_dist: Vec<Vec<u32>>,
    /// All-pairs hop distances over the overlay tree.
    pub tree_dist: Vec<Vec<u32>>,
    /// `routing[src][dst]` = the overlay neighbor of `src` that is the next
    /// hop toward `dst` (equal to `src` when `dst == src`). This is the
    /// "routing table for the broker overlay network" of Section 3.
    pub routing: Vec<Vec<usize>>,
}

impl Network {
    /// Build a k×k broker network with a deterministic, seed-dependent MST
    /// overlay.
    pub fn grid(k: usize, seed: u64) -> Self {
        TopologyKind::Grid.build(k, seed)
    }

    /// Build from an arbitrary connected graph (used by tests and the
    /// quickstart example for tiny hand-made topologies). `side` is kept for
    /// reporting only; the kind is [`TopologyKind::Custom`].
    pub fn from_graph(side: usize, graph: Graph) -> Self {
        Self::from_graph_kind(side, graph, TopologyKind::Custom)
    }

    fn from_graph_kind(side: usize, graph: Graph, kind: TopologyKind) -> Self {
        assert!(graph.is_connected(), "broker network must be connected");
        let tree = graph.minimum_spanning_tree();
        let grid_dist = graph.all_pairs_hops();
        let tree_dist: Vec<Vec<u32>> = (0..tree.len()).map(|v| tree.distances_from(v)).collect();
        let routing: Vec<Vec<usize>> = (0..tree.len()).map(|v| tree.next_hops_from(v)).collect();
        Network {
            side,
            kind,
            graph,
            tree,
            grid_dist,
            tree_dist,
            routing,
        }
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.graph.len()
    }

    /// True when this network is the paper's plain k×k grid (mobility models
    /// with grid-specific movement keep their original cell-math paths on
    /// it, preserving pre-refactor RNG streams byte for byte).
    pub fn is_grid(&self) -> bool {
        matches!(self.kind, TopologyKind::Grid)
    }

    /// Physical neighbors of a broker (adjacency order, deterministic).
    pub fn neighbors(&self, b: usize) -> impl Iterator<Item = usize> + '_ {
        self.graph.neighbors(b).iter().map(|&(w, _)| w)
    }

    /// Hop distance between two brokers over the physical grid.
    pub fn grid_distance(&self, a: usize, b: usize) -> u32 {
        self.grid_dist[a][b]
    }

    /// Hop distance between two brokers over the overlay tree.
    pub fn tree_distance(&self, a: usize, b: usize) -> u32 {
        self.tree_dist[a][b]
    }

    /// Next overlay hop from `src` toward `dst`.
    pub fn next_hop(&self, src: usize, dst: usize) -> usize {
        self.routing[src][dst]
    }

    /// The unique overlay path between two brokers.
    pub fn tree_path(&self, a: usize, b: usize) -> Vec<usize> {
        self.tree.path(a, b)
    }

    /// Maximum pairwise grid distance.
    pub fn grid_diameter(&self) -> u32 {
        self.grid_dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Maximum pairwise overlay distance.
    pub fn tree_diameter(&self) -> u32 {
        self.tree_dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Average pairwise grid distance over distinct broker pairs.
    pub fn average_grid_distance(&self) -> f64 {
        let n = self.broker_count();
        if n < 2 {
            return 0.0;
        }
        let total: u64 = self
            .grid_dist
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().filter(move |(j, _)| *j > i))
            .map(|(_, &d)| d as u64)
            .sum();
        total as f64 / (n * (n - 1) / 2) as f64
    }

    /// Average pairwise overlay distance over distinct broker pairs.
    pub fn average_tree_distance(&self) -> f64 {
        let n = self.broker_count();
        if n < 2 {
            return 0.0;
        }
        let total: u64 = self
            .tree_dist
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().filter(move |(j, _)| *j > i))
            .map(|(_, &d)| d as u64)
            .sum();
        total as f64 / (n * (n - 1) / 2) as f64
    }
}

/// Assignment of engine nodes to parallel-engine shards (see
/// `mhh_simnet::parallel`). A partition is purely a perf decision: the
/// parallel engine produces byte-identical results under *any* assignment,
/// so the partitioner only tries to keep chatty nodes together — the fewer
/// physical edges cross shards, the less traffic pays the barrier-exchange
/// path.
#[derive(Debug, Clone)]
pub struct Partition {
    shard_of: Vec<u32>,
    shards: usize,
}

impl Partition {
    /// Everything in one shard (the degenerate partition; the parallel
    /// engine then behaves exactly like the serial one).
    pub fn single(node_count: usize) -> Self {
        Partition {
            shard_of: vec![0; node_count],
            shards: 1,
        }
    }

    /// Contiguous equal blocks of node indices across (up to) `shards`
    /// shards — the topology-blind default used by tests and by callers
    /// without broker structure.
    pub fn contiguous(node_count: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(node_count.max(1));
        let block = node_count.div_ceil(shards).max(1);
        Partition {
            shard_of: (0..node_count).map(|i| (i / block) as u32).collect(),
            shards,
        }
    }

    /// An explicit per-node assignment. Shard ids must be dense from zero
    /// (every shard in `0..=max` may be empty except that `max` defines the
    /// count).
    pub fn from_assignments(shard_of: Vec<u32>) -> Self {
        let shards = shard_of.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        Partition { shard_of, shards }
    }

    /// The broker-aware partition the pub/sub deployment uses: brokers
    /// `0..B` are cut into contiguous index blocks (grid and torus builds
    /// number brokers row-major, so contiguous blocks are spatially compact
    /// stripes), and each client is co-located with its home broker —
    /// client↔broker wireless traffic, the bulk of city-scale load, then
    /// never crosses a shard boundary. `client_homes[i]` is the home broker
    /// of the client with node id `B + i`.
    pub fn broker_blocks(network: &Network, client_homes: &[usize], shards: usize) -> Self {
        let brokers = network.broker_count();
        let shards = shards.max(1).min(brokers.max(1));
        let block = brokers.div_ceil(shards).max(1);
        let broker_shard = |b: usize| (b / block) as u32;
        let mut shard_of = Vec::with_capacity(brokers + client_homes.len());
        shard_of.extend((0..brokers).map(broker_shard));
        shard_of.extend(client_homes.iter().map(|&h| {
            assert!(h < brokers, "client home {h} is not a broker");
            broker_shard(h)
        }));
        Partition { shard_of, shards }
    }

    /// Number of shards (≥ 1; possibly more than the number of *non-empty*
    /// shards).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes assigned.
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard of one node.
    pub fn shard_of(&self, node: usize) -> u32 {
        self.shard_of[node]
    }

    /// The full assignment, indexed by node id.
    pub fn assignments(&self) -> &[u32] {
        &self.shard_of
    }

    /// How well the partition respects the wired topology: which physical
    /// broker-to-broker edges cross shard boundaries (each such edge's
    /// traffic rides the barrier-exchange path). Client wireless links are
    /// not counted — under [`broker_blocks`](Self::broker_blocks) they
    /// never cross by construction.
    pub fn cut_report(&self, network: &Network) -> CutReport {
        let mut nodes_per_shard = vec![0usize; self.shards];
        for &s in &self.shard_of {
            nodes_per_shard[s as usize] += 1;
        }
        let mut cut_edges = 0;
        let mut total_edges = 0;
        for a in 0..network.broker_count() {
            for b in network.neighbors(a) {
                if b > a {
                    total_edges += 1;
                    if self.shard_of[a] != self.shard_of[b] {
                        cut_edges += 1;
                    }
                }
            }
        }
        CutReport {
            shards: self.shards,
            nodes_per_shard,
            cut_edges,
            total_edges,
        }
    }
}

/// The cut-weight summary of a [`Partition`] over a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutReport {
    /// Number of shards in the partition.
    pub shards: usize,
    /// Node count (brokers + clients) per shard.
    pub nodes_per_shard: Vec<usize>,
    /// Wired broker edges whose endpoints sit in different shards.
    pub cut_edges: usize,
    /// All wired broker edges.
    pub total_edges: usize,
}

impl CutReport {
    /// Fraction of wired edges crossing shard boundaries (0 when the graph
    /// has no edges).
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_contiguous_blocks_cover_all_nodes() {
        let p = Partition::contiguous(10, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.node_count(), 10);
        // ceil(10/4)=3 → blocks [0..3), [3..6), [6..9), [9..10).
        assert_eq!(p.assignments(), &[0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        // More shards than nodes degrades gracefully.
        assert_eq!(Partition::contiguous(2, 8).shards(), 2);
        assert_eq!(Partition::single(5).assignments(), &[0; 5]);
    }

    #[test]
    fn partition_clients_follow_home_brokers() {
        let net = Network::grid(4, 7); // 16 brokers
        let homes = vec![0, 5, 10, 15, 3];
        let p = Partition::broker_blocks(&net, &homes, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.node_count(), 16 + 5);
        for (i, &h) in homes.iter().enumerate() {
            assert_eq!(
                p.shard_of(16 + i),
                p.shard_of(h),
                "client {i} must share its home broker's shard"
            );
        }
        let report = p.cut_report(&net);
        assert_eq!(report.nodes_per_shard.iter().sum::<usize>(), 21);
    }

    #[test]
    fn cut_report_counts_crossing_grid_edges() {
        // A 4×4 grid split into two row bands: the cut is exactly the four
        // vertical edges between rows 1 and 2, out of 24 total edges.
        let net = Network::grid(4, 1);
        let p = Partition::contiguous(16, 2);
        let report = p.cut_report(&net);
        assert_eq!(report.total_edges, 24);
        assert_eq!(report.cut_edges, 4);
        assert!((report.cut_fraction() - 4.0 / 24.0).abs() < 1e-12);
        assert_eq!(report.nodes_per_shard, vec![8, 8]);
        // The degenerate partition cuts nothing.
        assert_eq!(Partition::single(16).cut_report(&net).cut_edges, 0);
    }

    #[test]
    fn grid_has_expected_shape() {
        let g = Graph::grid(4);
        assert_eq!(g.len(), 16);
        // 2 * k * (k - 1) edges in a k×k grid
        assert_eq!(g.edge_count(), 24);
        assert!(g.is_connected());
        // Corner has 2 neighbors, centre has 4.
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(5).len(), 4);
    }

    #[test]
    fn bfs_distance_is_manhattan_on_grid() {
        let g = Graph::grid(5);
        let d = g.bfs_distances(0);
        // node (r, c) has index r*5+c; manhattan distance from (0,0)
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(d[r * 5 + c], (r + c) as u32);
            }
        }
    }

    #[test]
    fn mst_spans_and_is_acyclic() {
        let g = Graph::grid_jittered(6, 99);
        let t = g.minimum_spanning_tree();
        assert_eq!(t.len(), 36);
        assert_eq!(t.edge_count(), 35);
        // Connected: every node reachable from 0.
        assert!(t.distances_from(0).iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn tree_path_endpoints_and_adjacency() {
        let net = Network::grid(5, 7);
        let p = net.tree_path(0, 24);
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 24);
        for w in p.windows(2) {
            assert!(net.tree.neighbors(w[0]).contains(&w[1]));
        }
        assert_eq!(p.len() as u32 - 1, net.tree_distance(0, 24));
    }

    #[test]
    fn next_hop_lies_on_tree_path() {
        let net = Network::grid(6, 3);
        for src in 0..net.broker_count() {
            for dst in 0..net.broker_count() {
                if src == dst {
                    assert_eq!(net.next_hop(src, dst), src);
                    continue;
                }
                let hop = net.next_hop(src, dst);
                let path = net.tree_path(src, dst);
                assert_eq!(path[1], hop, "next hop must be second node on the path");
            }
        }
    }

    #[test]
    fn tree_distance_at_least_grid_distance() {
        let net = Network::grid(7, 11);
        for a in 0..net.broker_count() {
            for b in 0..net.broker_count() {
                assert!(net.tree_distance(a, b) >= net.grid_distance(a, b));
            }
        }
    }

    #[test]
    fn diameters_and_averages_are_sane() {
        let net = Network::grid(10, 1);
        assert_eq!(net.grid_diameter(), 18); // (k-1)*2 for a grid
        assert!(net.tree_diameter() >= net.grid_diameter());
        let avg_grid = net.average_grid_distance();
        let avg_tree = net.average_tree_distance();
        assert!(avg_grid > 0.0 && avg_grid < net.grid_diameter() as f64);
        assert!(avg_tree >= avg_grid);
        assert!(avg_tree <= net.tree_diameter() as f64);
    }

    #[test]
    fn single_node_network_works() {
        let g = Graph::grid(1);
        let net = Network::from_graph(1, g);
        assert_eq!(net.broker_count(), 1);
        assert_eq!(net.tree_path(0, 0), vec![0]);
        assert_eq!(net.grid_diameter(), 0);
        assert_eq!(net.average_grid_distance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_rejected() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(1, 1, 1);
    }

    #[test]
    fn jittered_grids_differ_by_seed_but_not_shape() {
        let a = Network::grid(6, 1);
        let b = Network::grid(6, 2);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        // Overlay trees usually differ across seeds; distances over the grid
        // must be identical because weights only perturb tree choice.
        assert_eq!(a.grid_dist, b.grid_dist);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Network::grid(8, 5);
        let b = Network::grid(8, 5);
        assert_eq!(a.tree_dist, b.tree_dist);
        assert_eq!(a.routing, b.routing);
    }

    #[test]
    fn torus_wraps_and_shrinks_the_diameter() {
        let grid = TopologyKind::Grid.build(6, 9);
        let torus = TopologyKind::Torus.build(6, 9);
        assert_eq!(torus.broker_count(), 36);
        // Every torus station has degree 4; 2k extra edges over the grid.
        assert!(torus.graph.neighbors(0).len() == 4);
        assert_eq!(torus.graph.edge_count(), grid.graph.edge_count() + 12);
        // Opposite corners are close on the torus.
        assert!(torus.grid_diameter() < grid.grid_diameter());
        assert!(!torus.is_grid() && grid.is_grid());
        // Tiny tori degrade to plain grids instead of multigraphs.
        assert_eq!(
            TopologyKind::Torus.build(2, 1).graph.edge_count(),
            Graph::grid(2).edge_count()
        );
    }

    #[test]
    fn random_geometric_is_connected_and_deterministic() {
        for seed in [1u64, 2, 3, 4, 5] {
            let net = TopologyKind::RandomGeometric { target_degree: 3.0 }.build(5, seed);
            assert_eq!(net.broker_count(), 25);
            assert!(net.graph.is_connected());
        }
        let a = Graph::random_geometric(30, 4.0, 7);
        let b = Graph::random_geometric(30, 4.0, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_ne!(
            a.edge_count(),
            Graph::random_geometric(30, 4.0, 8).edge_count()
        );
    }

    #[test]
    fn scale_free_grows_hubs() {
        let net = TopologyKind::ScaleFree { edges_per_node: 2 }.build(7, 3);
        assert_eq!(net.broker_count(), 49);
        assert!(net.graph.is_connected());
        // Preferential attachment concentrates degree: the max degree is a
        // multiple of the mean (~2m = 4).
        let max_deg = (0..49).map(|v| net.graph.neighbors(v).len()).max().unwrap();
        assert!(max_deg >= 8, "no hub emerged: max degree {max_deg}");
        // m clamps into the valid range on degenerate sizes.
        assert!(Graph::scale_free(1, 2, 0).is_connected());
        assert_eq!(Graph::scale_free(3, 9, 0).edge_count(), 3);
    }

    #[test]
    fn edge_list_topology_imports_and_dedups() {
        let text = "0 1\n1 2 # back row\n2 3\n3 0\n\n# dupes and loops skipped\n1 0\n2 2\n";
        let edges = parse_edge_list(text).expect("well-formed");
        assert_eq!(edges.len(), 6);
        let kind = TopologyKind::EdgeList(Arc::new(edges));
        assert_eq!(kind.node_count(99), 4, "node count comes from the list");
        let net = kind.build(0, 5);
        assert_eq!(net.broker_count(), 4);
        assert_eq!(net.graph.edge_count(), 4, "dupe and self-loop dropped");
        assert!(parse_edge_list("0 1 2").is_err());
        assert!(parse_edge_list("0 x").unwrap_err().contains("line 1"));
    }

    #[test]
    fn kinds_parse_round_trip_and_display_parameter_points() {
        for name in TopologyKind::names() {
            let kind = TopologyKind::parse(name).expect("listed kinds parse");
            assert_eq!(kind.label(), *name);
        }
        assert!(TopologyKind::parse("mesh-of-trees").is_none());
        assert_eq!(TopologyKind::default(), TopologyKind::Grid);
        assert_eq!(
            TopologyKind::ScaleFree { edges_per_node: 3 }.to_string(),
            "scale-free(m=3)"
        );
        assert_eq!(
            TopologyKind::RandomGeometric { target_degree: 4.0 }.to_string(),
            "random-geometric(deg=4)"
        );
        assert_eq!(TopologyKind::Torus.to_string(), "torus");
    }

    #[test]
    fn every_buildable_kind_yields_working_routing_tables() {
        let kinds = [
            TopologyKind::Grid,
            TopologyKind::Torus,
            TopologyKind::RandomGeometric { target_degree: 4.0 },
            TopologyKind::ScaleFree { edges_per_node: 2 },
        ];
        for kind in kinds {
            let net = kind.build(4, 11);
            assert_eq!(net.broker_count(), 16, "{kind}");
            for src in 0..16 {
                for dst in 0..16 {
                    let mut cur = src;
                    let mut steps = 0;
                    while cur != dst {
                        cur = net.next_hop(cur, dst);
                        steps += 1;
                        assert!(steps <= 16, "{kind}: routing loop {src}->{dst}");
                    }
                    assert_eq!(steps, net.tree_distance(src, dst) as usize, "{kind}");
                }
            }
        }
    }
}
