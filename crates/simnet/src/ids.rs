//! Strongly-typed node identifiers.

use std::fmt;

/// Identifier of a node managed by the simulation [`Engine`](crate::Engine).
///
/// Node ids are dense indices assigned by the caller when the node vector is
/// built; the pub/sub layer maps broker ids and client ids onto disjoint
/// ranges of node ids (see `mhh-pubsub::address`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Pack an ordered node pair into one word — the link key shared by the
/// engine's channel clocks ([`clocks`](crate::clocks)) and the jittered
/// fabric's per-pair sampling. Injective for all real node ids, so it can
/// key hash tables directly; `pack_pair(NodeId(u32::MAX), NodeId(u32::MAX))`
/// (= `u64::MAX`) is reserved as the open-addressing empty sentinel, which
/// is unreachable because node ids are dense indices into the node vector.
pub const fn pack_pair(from: NodeId, to: NodeId) -> u64 {
    ((from.0 as u64) << 32) | to.0 as u64
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        let id = NodeId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(7), NodeId(7));
    }
}
