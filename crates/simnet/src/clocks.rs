//! Per-link channel state: the engine's FIFO-by-construction clocks plus
//! the per-link send counters that key variable-latency sampling.
//!
//! Every ordered `(from, to)` node pair carries two words:
//!
//! * the **channel clock** — the latest delivery instant already scheduled
//!   on that link; a new message is clamped to `max(now + latency, clock)`
//!   so later sends can never overtake earlier ones (see the engine module
//!   docs);
//! * the **send counter** — how many messages have been sent on the link so
//!   far. Variable fabrics ([`JitteredFabric`](crate::fabric::JitteredFabric))
//!   key their per-message jitter off `(from, to, link send index)` instead
//!   of a global sequence number, which makes every link's latency stream a
//!   *local* property: a partitioned engine that owns the sender's link
//!   state reproduces the serial engine's samples exactly, with no global
//!   coordination (see `parallel`).
//!
//! Both live in one 16-byte entry so the per-send hot path touches a single
//! cache line. The table sits on that hot path, so its representation
//! matters:
//!
//! * **Dense** — for runs up to [`DENSE_NODE_LIMIT`] nodes the table is a
//!   flat `Vec<LinkState>` indexed by `from * n + to`: one multiply-add and
//!   one cache line, no hashing, no probing, no possibility of growth.
//! * **Sharded** — above the threshold a dense n² table would waste
//!   gigabytes on pairs that never talk, so the link state lives in 16
//!   open-addressing shards (linear probing, power-of-two capacity, keyed
//!   by [`pack_pair`], hashed by [`LinkKeyHasher`]). Sharding bounds the
//!   cost of any single rehash.
//!
//! Both representations are pure lookup tables — which one is active can
//! never change delivery timestamps, only how fast they are computed. The
//! unit tests below drive the same traffic through both and assert equal
//! clamping decisions.

use std::hash::Hasher;

use crate::ids::{pack_pair, NodeId};
use crate::time::SimTime;

/// Node-count threshold up to which the dense n×n table is used
/// (`DENSE_NODE_LIMIT²` 16-byte link entries ≈ 26 MB at the limit).
pub const DENSE_NODE_LIMIT: usize = 1_280;

/// Number of open-addressing shards in the sparse representation.
const SHARDS: usize = 16;

/// Initial per-shard capacity (slots); must be a power of two.
const SHARD_INITIAL: usize = 256;

/// One ordered link's state: FIFO clock + send counter, sized to share a
/// cache line pair-wise.
#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    clock: SimTime,
    sends: u64,
}

/// Multiply-mix hasher for the packed `(from, to)` link keys: the channel
/// clock lookup sits on the engine's per-send hot path, where the default
/// SipHash would cost more than the virtual call the `LinkCost` refactor
/// saved. One shared [`mix64`](crate::random) finalization over a single
/// `u64` is plenty for dense node-id pairs.
///
/// Only [`write_u64`](Hasher::write_u64) is ever reached: the sole key type
/// is the packed `u64` from [`pack_pair`], whose `Hasher` path is exactly
/// one `write_u64` call. The byte-oriented [`write`](Hasher::write)
/// fallback below is therefore unreachable by construction — it exists so
/// the type still satisfies the `Hasher` contract, and it `debug_assert!`s
/// so that a future non-`u64` key is caught in tests instead of silently
/// taking the weak FNV byte path (64-bit FNV prime over a zero offset
/// basis, fine as a correctness fallback, not as a distribution guarantee).
#[derive(Default)]
pub struct LinkKeyHasher(u64);

impl Hasher for LinkKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        debug_assert!(
            false,
            "LinkKeyHasher only hashes u64 link keys (write_u64); \
             a non-u64 key would silently get the weak byte fallback"
        );
        // Unreachable-by-construction fallback: FNV-1a-style byte fold.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = crate::random::mix64(v);
    }
}

#[inline]
fn hash_key(key: u64) -> u64 {
    let mut h = LinkKeyHasher::default();
    h.write_u64(key);
    h.finish()
}

/// One open-addressing shard: linear probing over power-of-two slots.
/// `u64::MAX` is the empty-slot sentinel — unreachable as a real key, since
/// `pack_pair(u32::MAX, u32::MAX)` would require 2³² nodes.
#[derive(Debug)]
struct Shard {
    keys: Vec<u64>,
    states: Vec<LinkState>,
    len: usize,
}

const EMPTY: u64 = u64::MAX;

impl Shard {
    fn new() -> Self {
        Shard {
            keys: vec![EMPTY; SHARD_INITIAL],
            states: vec![LinkState::default(); SHARD_INITIAL],
            len: 0,
        }
    }

    /// Find the slot for `key`, inserting a default entry on first touch.
    /// Returns `(slot index, grew)`.
    #[inline]
    fn slot_for(&mut self, key: u64, hash: u64) -> (usize, bool) {
        debug_assert_ne!(key, EMPTY);
        let mask = self.keys.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == key {
                return (i, false);
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.states[i] = LinkState::default();
                self.len += 1;
                if self.len * 8 >= self.keys.len() * 7 {
                    self.grow();
                    // The slot moved during the rehash; re-probe (the table
                    // just doubled, so this terminates immediately).
                    let mask = self.keys.len() - 1;
                    let mut j = (hash as usize) & mask;
                    while self.keys[j] != key {
                        j = (j + 1) & mask;
                    }
                    return (j, true);
                }
                return (i, false);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_states = std::mem::replace(&mut self.states, vec![LinkState::default(); new_cap]);
        let mask = new_cap - 1;
        for (k, s) in old_keys.into_iter().zip(old_states) {
            if k == EMPTY {
                continue;
            }
            let mut i = (hash_key(k) as usize) & mask;
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.states[i] = s;
        }
    }

    /// Drop all entries but keep the slot capacity (arena reuse).
    fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.states.fill(LinkState::default());
        self.len = 0;
    }
}

/// The engine's per-link channel state table — dense flat array for
/// grid-sized runs, sharded open addressing at city scale. See the module
/// docs for the trade. The representation is chosen once, from the node
/// count, in [`new`](Self::new).
#[derive(Debug)]
pub struct LinkClocks {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    /// Flat `n × n` table indexed by `from * n + to`.
    Dense { n: usize, table: Vec<LinkState> },
    /// Open-addressing shards keyed by the packed pair; a key's shard is
    /// the top bits of its hash. `grows` counts rehash events for the
    /// allocation sanity counter.
    Sharded { shards: Vec<Shard>, grows: u64 },
}

impl LinkClocks {
    /// Choose the representation for a run over `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        let repr = if node_count <= DENSE_NODE_LIMIT {
            Repr::Dense {
                n: node_count,
                table: vec![LinkState::default(); node_count * node_count],
            }
        } else {
            Repr::sharded()
        };
        LinkClocks { repr }
    }

    /// The sharded representation regardless of node count (tests compare
    /// it against the dense table on identical traffic; the parallel
    /// engine's per-shard tables use it to avoid `K` dense n² copies).
    pub fn sharded() -> Self {
        LinkClocks {
            repr: Repr::sharded(),
        }
    }

    /// True when this is the dense flat-table representation.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Reset all link state for a fresh run over `node_count` nodes,
    /// keeping the backing storage when the representation allows it
    /// (dense table of the same size, or any sharded table). This is the
    /// arena-reuse path: a reset table reports zero
    /// [`alloc_events`](Self::alloc_events) again.
    pub fn reset(&mut self, node_count: usize) {
        let want_dense = node_count <= DENSE_NODE_LIMIT;
        match &mut self.repr {
            Repr::Dense { n, table } if want_dense && *n == node_count => {
                table.fill(LinkState::default());
            }
            Repr::Sharded { shards, grows } if !want_dense => {
                for s in shards {
                    s.clear();
                }
                *grows = 0;
            }
            repr => *repr = LinkClocks::new(node_count).repr,
        }
    }

    /// The one per-send call into the table: look the ordered link up
    /// **once**, hand its current send index to `propose` (which samples
    /// the fabric and returns the proposed delivery instant), then clamp
    /// against the channel clock, advance it, and bump the send counter.
    /// Returns the FIFO-clamped delivery instant.
    ///
    /// The send index passed to `propose` is the number of messages sent on
    /// this ordered link *before* this one — a per-link sequence that is
    /// identical however the node set is partitioned, because every send on
    /// `(from, to)` is performed by `from`.
    #[inline]
    pub fn advance_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        propose: impl FnOnce(u64) -> SimTime,
    ) -> SimTime {
        match &mut self.repr {
            Repr::Dense { n, table } => {
                debug_assert!(from.index() < *n && to.index() < *n);
                let slot = &mut table[from.index() * *n + to.index()];
                let proposed = propose(slot.sends);
                slot.sends += 1;
                let at = proposed.max(slot.clock);
                slot.clock = at;
                at
            }
            Repr::Sharded { shards, grows } => {
                let key = pack_pair(from, to);
                let hash = hash_key(key);
                // Top hash bits pick the shard, low bits the probe start —
                // independent, so shard fill stays uniform.
                let shard = &mut shards[(hash >> 60) as usize & (SHARDS - 1)];
                let (i, grew) = shard.slot_for(key, hash);
                if grew {
                    *grows += 1;
                }
                let slot = &mut shard.states[i];
                let proposed = propose(slot.sends);
                slot.sends += 1;
                let at = proposed.max(slot.clock);
                slot.clock = at;
                at
            }
        }
    }

    /// Clamp a proposed delivery instant against the link's channel clock
    /// and advance the clock (and send counter): returns
    /// `max(proposed, clock)` and stores it. Convenience wrapper over
    /// [`advance_send`](Self::advance_send) for callers whose proposal does
    /// not depend on the send index.
    #[inline]
    pub fn advance(&mut self, from: NodeId, to: NodeId, proposed: SimTime) -> SimTime {
        self.advance_send(from, to, |_| proposed)
    }

    /// Number of table growth events (0 for the dense table, which
    /// allocates exactly once up front).
    pub fn alloc_events(&self) -> u64 {
        match &self.repr {
            Repr::Dense { .. } => 0,
            Repr::Sharded { grows, .. } => *grows,
        }
    }
}

impl Repr {
    fn sharded() -> Self {
        Repr::Sharded {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            grows: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::DetRng;

    #[test]
    fn clamps_and_advances_like_a_map() {
        let mut c = LinkClocks::new(4);
        let (a, b) = (NodeId(1), NodeId(2));
        assert_eq!(
            c.advance(a, b, SimTime::from_millis(10)),
            SimTime::from_millis(10)
        );
        // An earlier proposal on the same link clamps up to the clock.
        assert_eq!(
            c.advance(a, b, SimTime::from_millis(7)),
            SimTime::from_millis(10)
        );
        // Other links (including the reverse direction) are independent.
        assert_eq!(
            c.advance(b, a, SimTime::from_millis(3)),
            SimTime::from_millis(3)
        );
        assert_eq!(
            c.advance(a, b, SimTime::from_millis(12)),
            SimTime::from_millis(12)
        );
    }

    #[test]
    fn send_counters_count_per_ordered_link() {
        for mut c in [LinkClocks::new(8), LinkClocks::sharded()] {
            let (a, b) = (NodeId(1), NodeId(2));
            let mut seen = Vec::new();
            for _ in 0..3 {
                c.advance_send(a, b, |s| {
                    seen.push(s);
                    SimTime::ZERO
                });
            }
            // The reverse direction and other links count independently.
            c.advance_send(b, a, |s| {
                seen.push(s);
                SimTime::ZERO
            });
            c.advance_send(a, b, |s| {
                seen.push(s);
                SimTime::ZERO
            });
            assert_eq!(seen, vec![0, 1, 2, 0, 3]);
        }
    }

    #[test]
    fn representation_follows_node_count() {
        assert!(LinkClocks::new(DENSE_NODE_LIMIT).is_dense());
        assert!(!LinkClocks::new(DENSE_NODE_LIMIT + 1).is_dense());
        assert_eq!(LinkClocks::new(100).alloc_events(), 0);
    }

    /// The two representations must make identical clamping decisions for
    /// identical traffic — the representation is a pure perf choice.
    #[test]
    fn dense_and_sharded_agree() {
        for seed in 0..4u64 {
            let mut rng = DetRng::new(0xC10C ^ seed);
            let n = 50usize;
            let mut dense = LinkClocks::new(n);
            assert!(dense.is_dense());
            let mut sharded = LinkClocks::sharded();
            for _ in 0..20_000 {
                let from = NodeId(rng.index(n) as u32);
                let to = NodeId(rng.index(n) as u32);
                let proposed = SimTime::from_micros(rng.next_below(5_000));
                assert_eq!(
                    dense.advance(from, to, proposed),
                    sharded.advance(from, to, proposed),
                    "seed {seed}: representations diverged"
                );
            }
        }
    }

    #[test]
    fn sharded_grows_and_keeps_every_clock() {
        let mut c = LinkClocks::sharded();
        // Insert far more links than the initial capacity to force rehashes,
        // with a distinct clock per link so every read-back is exact.
        let n = 800u32;
        for from in 0..n {
            for to in 0..16u32 {
                let t = SimTime::from_micros((from * 16 + to) as u64 + 1);
                assert_eq!(c.advance(NodeId(from), NodeId(to), t), t);
            }
        }
        assert!(
            c.alloc_events() > 0,
            "12800 links must outgrow 16×256 slots"
        );
        // Every link's clock survived the rehashes: an ancient proposal
        // clamps up to the stored instant.
        for from in 0..n {
            for to in 0..16u32 {
                let want = SimTime::from_micros((from * 16 + to) as u64 + 1);
                assert_eq!(c.advance(NodeId(from), NodeId(to), SimTime::ZERO), want);
            }
        }
    }

    /// A slot inserted on the probe that triggers a rehash must stay
    /// reachable (the rehash moves it; `slot_for` re-probes).
    #[test]
    fn growth_probe_returns_the_moved_slot() {
        let mut c = LinkClocks::sharded();
        let mut expected = Vec::new();
        for i in 0..40_000u32 {
            let from = NodeId(i / 64);
            let to = NodeId(i % 64);
            let t = SimTime::from_micros(i as u64 + 1);
            c.advance(from, to, t);
            expected.push((from, to, t));
        }
        for (from, to, t) in expected {
            assert_eq!(c.advance(from, to, SimTime::ZERO), t);
        }
    }

    /// `reset` keeps capacity but behaves like a fresh table.
    #[test]
    fn reset_clears_clocks_and_counters() {
        for sharded in [false, true] {
            let mut c = if sharded {
                LinkClocks::sharded()
            } else {
                LinkClocks::new(32)
            };
            for i in 0..32u32 {
                c.advance(NodeId(i), NodeId((i + 1) % 32), SimTime::from_secs(9));
            }
            c.reset(32);
            if !sharded {
                assert!(c.is_dense());
            }
            assert_eq!(c.alloc_events(), 0);
            // Clock cleared: an early proposal is no longer clamped.
            assert_eq!(
                c.advance(NodeId(0), NodeId(1), SimTime::from_millis(1)),
                SimTime::from_millis(1)
            );
            // Counter cleared: the next send index is 0 again.
            c.advance_send(NodeId(2), NodeId(3), |s| {
                assert_eq!(s, 0);
                SimTime::ZERO
            });
        }
        // A size change rebuilds the dense table at the new size.
        let mut c = LinkClocks::new(4);
        c.reset(8);
        assert_eq!(
            c.advance(NodeId(7), NodeId(6), SimTime::from_millis(2)),
            SimTime::from_millis(2)
        );
    }
}
