//! Simulation time.
//!
//! The simulator uses a logical clock with microsecond resolution. The paper
//! works with millisecond-scale link latencies (10 ms wired, 20 ms wireless)
//! and second-to-hour scale mobility periods, so microseconds give ample
//! headroom without ever risking rounding artefacts in the delay metrics.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounded to the microsecond grid,
    /// like [`SimDuration::from_secs_f64`]).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1_000_000.0).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future (callers treat that as a logic error elsewhere).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (used by the exponential mobility
    /// model). Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1_000_000.0).round() as u64)
        }
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply the duration by an integer factor (hop count × per-hop
    /// latency).
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(10).as_micros(), 10_000);
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(20).as_micros(), 20_000);
        assert_eq!(SimDuration::from_secs(300).as_secs_f64(), 300.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(5) + SimDuration::from_millis(10);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_millis(10));
        // subtraction saturates rather than panicking
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(9),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }

    #[test]
    fn times_scales_duration() {
        assert_eq!(
            SimDuration::from_millis(10).times(7),
            SimDuration::from_millis(70)
        );
    }
}
