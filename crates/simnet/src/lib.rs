//! # mhh-simnet — deterministic discrete-event network simulator
//!
//! This crate is the lowest substrate of the MHH reproduction. It provides
//! everything the paper's evaluation environment needs that is *not*
//! publish/subscribe specific:
//!
//! * a logical clock and strongly typed simulation time ([`SimTime`],
//!   [`SimDuration`]),
//! * a discrete-event engine ([`Engine`]) delivering messages between
//!   [`Node`]s with per-link FIFO ordering — the correctness assumption the
//!   MHH protocol relies on (paper, Section 3) — enforced by per-link
//!   channel clocks, so it holds even under variable link latency,
//! * topology construction ([`topology`]): the pluggable [`TopologyKind`]
//!   family — the k×k base-station grid of Section 5.1 plus torus,
//!   random-geometric, scale-free and imported edge lists — each with a
//!   minimum spanning tree overlay, shortest-path distances and per-broker
//!   routing tables built once per run,
//! * a link-cost model ([`Fabric`], one [`LinkCost`] per message) with the
//!   paper's constants (10 ms wired, 20 ms wireless) and a
//!   [`JitteredFabric`] wrapper (seeded per-message jitter, per-direction
//!   asymmetry, timed degradation windows — [`LinkModel`]),
//! * deterministic fault injection ([`faults`]): a seeded [`FaultSchedule`]
//!   of broker crash/restart windows, envelope-dropping link partitions and
//!   region outages that the engine consults on the delivery path,
//!   recording every dropped envelope so delivery audits still reconcile,
//! * traffic accounting by class ([`stats::TrafficStats`]) so that the
//!   "message overhead measured in hops" metric of Section 5.1 can be
//!   collected without instrumenting protocol code, and
//! * small deterministic random-number utilities ([`random`]) so that every
//!   experiment run is exactly reproducible from a seed.
//!
//! Determinism is a property the reproduction tests rely on, and it does
//! not require running single-threaded: the conservative-parallel
//! [`ParallelEngine`] shards the node set ([`topology::Partition`]) and
//! synchronises at lookahead-bounded window barriers, reconstructing the
//! serial engine's exact delivery sequence — same seed, same order, same
//! stats, byte for byte (differentially tested against [`Engine`] in
//! `tests/parallel_equivalence.rs`). Parallelism is also applied one level
//! up across *independent* runs by the scoped-thread sweep executor in
//! `mhh-mobility::sweep`; [`with_thread_allowance`] budgets the two levels
//! against each other so nesting never oversubscribes the machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clocks;
pub mod engine;
pub mod fabric;
pub mod faults;
pub mod ids;
pub mod parallel;
pub mod queue;
pub mod random;
pub mod reference;
pub mod stats;
pub mod time;
pub mod topology;

pub use clocks::LinkClocks;
pub use engine::{
    Context, Engine, EngineArena, EngineConfig, EnginePerf, Envelope, Node, PhaseBreakdown,
    RunOutcome,
};
pub use fabric::{
    DegradedWindow, Fabric, GridFabric, JitteredFabric, LinkCost, LinkModel, UniformFabric,
};
pub use faults::{
    DropCause, DropRecord, FaultKind, FaultSchedule, FaultScheduleError, LinkFate, LossModel,
    OutageScope, OutageWindow,
};
pub use ids::NodeId;
pub use parallel::{
    thread_allowance, with_thread_allowance, AnyEngine, ParallelEngine, ParallelPerf, ShardPerf,
};
pub use queue::EventQueue;
pub use reference::ReferenceEngine;
pub use stats::{Message, TrafficClass, TrafficStats};
pub use time::{SimDuration, SimTime};
pub use topology::{parse_edge_list, CutReport, Graph, Network, Partition, TopologyKind, Tree};
