//! Deterministic fault injection: crash windows, link partitions, region
//! outages.
//!
//! A [`FaultSchedule`] is plain data — a list of [`OutageWindow`]s fixed
//! before the run starts — that the engine consults on the delivery path.
//! While a window is active, envelopes it covers are **dropped, not
//! delayed**: the engine records a [`DropRecord`] (when, which link, which
//! message kind, which window) instead of invoking the destination's
//! callback, so nothing vanishes silently and the delivery audit still
//! reconciles every lost event against an outage window.
//!
//! Three failure scopes are modelled:
//!
//! * **broker crash/restart** ([`OutageScope::Node`]): every envelope whose
//!   delivery instant falls inside the window and whose *destination* is the
//!   crashed node is dropped — including its own timers, which is how a
//!   restart loses pending timer state. In-flight messages the node sent
//!   before crashing still arrive (they were already on the wire).
//! * **link partition** ([`OutageScope::Link`]): envelopes between the two
//!   endpoints (either direction) are dropped; both nodes stay up and can
//!   route around the cut.
//! * **region outage** ([`OutageScope::Region`]): a set of nodes — typically
//!   everything within `radius` hops of an epicenter on *any*
//!   [`TopologyKind`](crate::topology::TopologyKind), computed by
//!   [`FaultSchedule::region_outage`] via BFS over the physical graph — all
//!   down for the window.
//!
//! Determinism: the schedule is immutable data and
//! [`verdict`](FaultSchedule::verdict) is a pure function of
//! `(from, to, instant)`, so the same schedule over the same seeded workload
//! drops the byte-identical envelope sequence. The seeded generator
//! [`FaultSchedule::crash_storm`] derives windows from a [`DetRng`] stream,
//! making randomized storms reproducible from a single seed. An **empty**
//! schedule is never installed by the engine (`set_faults` keeps the fast
//! path), so zero-fault runs stay byte-identical to a faultless build.

use crate::ids::NodeId;
use crate::random::DetRng;
use crate::stats::TrafficClass;
use crate::time::{SimDuration, SimTime};
use crate::topology::Network;

/// What kind of failure an outage window models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A single broker is down and later restarts.
    BrokerCrash,
    /// A link drops all traffic between two nodes, both of which stay up.
    LinkPartition,
    /// A set of nodes (an area of the topology) is down.
    RegionOutage,
}

impl FaultKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BrokerCrash => "crash",
            FaultKind::LinkPartition => "partition",
            FaultKind::RegionOutage => "region",
        }
    }
}

/// Which envelopes an outage window covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutageScope {
    /// Everything delivered *to* this node (including its own timers).
    Node(NodeId),
    /// Everything between these two nodes, in either direction.
    Link(NodeId, NodeId),
    /// Everything delivered to any node in the set.
    Region(Vec<NodeId>),
}

impl OutageScope {
    /// Whether an envelope `from → to` falls under this scope.
    #[inline]
    fn covers(&self, from: NodeId, to: NodeId) -> bool {
        match self {
            OutageScope::Node(n) => to == *n,
            OutageScope::Link(a, b) => (from == *a && to == *b) || (from == *b && to == *a),
            OutageScope::Region(nodes) => nodes.contains(&to),
        }
    }
}

/// One failure interval: `[start, end)` in simulation time. At `end` the
/// broker restarts / the link heals; an envelope delivered exactly at `end`
/// goes through.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageWindow {
    /// The failure class this window models.
    pub kind: FaultKind,
    /// First instant of the outage (inclusive).
    pub start: SimTime,
    /// Restart/heal instant (exclusive — the fault is over at `end`).
    pub end: SimTime,
    /// Which envelopes the window covers.
    pub scope: OutageScope,
}

impl OutageWindow {
    /// Whether the window is active at `t`.
    #[inline]
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// The nodes this window takes down (empty for a partition — both
    /// endpoints stay up).
    pub fn down_nodes(&self) -> &[NodeId] {
        match &self.scope {
            OutageScope::Node(n) => std::slice::from_ref(n),
            OutageScope::Link(..) => &[],
            OutageScope::Region(nodes) => nodes,
        }
    }

    /// Human-readable scope label (`"broker 12"`, `"link 3↔4"`,
    /// `"region(5 nodes)"`).
    pub fn scope_label(&self) -> String {
        match &self.scope {
            OutageScope::Node(n) => format!("broker {}", n.0),
            OutageScope::Link(a, b) => format!("link {}-{}", a.0, b.0),
            OutageScope::Region(nodes) => format!("region({} nodes)", nodes.len()),
        }
    }
}

/// One envelope the engine dropped instead of delivering. The engine keeps
/// these in delivery order; downstream ledgers attribute losses to outage
/// windows through the `window` index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropRecord {
    /// The delivery instant at which the drop happened.
    pub at: SimTime,
    /// Sender of the dropped envelope.
    pub from: NodeId,
    /// Destination that never saw it.
    pub to: NodeId,
    /// The message's kind label ([`crate::stats::Message::kind`]).
    pub kind: &'static str,
    /// The message's traffic class.
    pub class: TrafficClass,
    /// Index into [`FaultSchedule::windows`] of the window that caused the
    /// drop (the first active covering window wins).
    pub window: usize,
}

/// A fixed, deterministic plan of failures for one run.
///
/// Build one with the chainable constructors ([`crash`](Self::crash),
/// [`partition`](Self::partition), [`region_outage`](Self::region_outage))
/// or generate a randomized-but-seeded storm with
/// [`crash_storm`](Self::crash_storm), then install it on the engine via
/// `Engine::set_faults`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<OutageWindow>,
    /// Earliest window start — a cheap pre-filter for the per-delivery check.
    first_start: Option<SimTime>,
    /// Latest window end.
    last_end: Option<SimTime>,
}

impl FaultSchedule {
    /// An empty schedule (never installed by the engine; keeps the
    /// zero-fault fast path).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Whether the schedule contains no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// All outage windows, in insertion order (the order `DropRecord.window`
    /// indexes).
    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }

    /// Append an arbitrary window.
    pub fn push(&mut self, window: OutageWindow) {
        debug_assert!(window.start < window.end, "empty outage window");
        self.first_start = Some(match self.first_start {
            Some(s) => s.min(window.start),
            None => window.start,
        });
        self.last_end = Some(match self.last_end {
            Some(e) => e.max(window.end),
            None => window.end,
        });
        self.windows.push(window);
    }

    /// Add a broker crash/restart window: `node` is down in `[start, end)`.
    pub fn crash(mut self, node: NodeId, start: SimTime, end: SimTime) -> Self {
        self.push(OutageWindow {
            kind: FaultKind::BrokerCrash,
            start,
            end,
            scope: OutageScope::Node(node),
        });
        self
    }

    /// Add a link partition window: all traffic between `a` and `b` (both
    /// directions) is dropped in `[start, end)`.
    pub fn partition(mut self, a: NodeId, b: NodeId, start: SimTime, end: SimTime) -> Self {
        self.push(OutageWindow {
            kind: FaultKind::LinkPartition,
            start,
            end,
            scope: OutageScope::Link(a, b),
        });
        self
    }

    /// Add a region outage: every broker within `radius` hops of
    /// `epicenter` on the physical graph (BFS — works over any topology
    /// kind) is down in `[start, end)`.
    pub fn region_outage(
        mut self,
        network: &Network,
        epicenter: NodeId,
        radius: u32,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        let nodes: Vec<NodeId> = (0..network.broker_count())
            .filter(|&b| network.grid_distance(epicenter.index(), b) <= radius)
            .map(|b| NodeId(b as u32))
            .collect();
        self.push(OutageWindow {
            kind: FaultKind::RegionOutage,
            start,
            end,
            scope: OutageScope::Region(nodes),
        });
        self
    }

    /// Generate a seeded storm of `count` broker crashes: victims drawn
    /// uniformly from `0..brokers`, starts uniform over the middle of
    /// `[0, horizon]` (10%–80%, so every crash has room to repair before the
    /// run ends), downtime exponential around `mean_down` (clamped to at
    /// least one tenth of it). The same seed always generates the same
    /// storm.
    pub fn crash_storm(
        seed: u64,
        brokers: usize,
        count: usize,
        horizon: SimTime,
        mean_down: SimDuration,
    ) -> Self {
        let mut rng = DetRng::new(seed);
        let mut schedule = FaultSchedule::new();
        let horizon_s = horizon.as_secs_f64();
        let mean_down_s = mean_down.as_secs_f64();
        for _ in 0..count {
            let node = NodeId(rng.index(brokers.max(1)) as u32);
            let start_s = rng.range_f64(0.1 * horizon_s, 0.8 * horizon_s);
            let down_s = rng.exponential(mean_down_s).max(0.1 * mean_down_s);
            schedule.push(OutageWindow {
                kind: FaultKind::BrokerCrash,
                start: SimTime::from_secs_f64(start_s),
                end: SimTime::from_secs_f64(start_s + down_s),
                scope: OutageScope::Node(node),
            });
        }
        schedule
    }

    /// Whether `node` is down (covered by an active Node/Region window) at
    /// `t`.
    pub fn is_down(&self, node: NodeId, t: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.active_at(t) && w.down_nodes().contains(&node))
    }

    /// The fault verdict for an envelope `from → to` delivered at `t`:
    /// `Some((window index, kind))` of the first active window covering it,
    /// `None` when it goes through. Pure — same arguments, same answer.
    #[inline]
    pub fn verdict(&self, from: NodeId, to: NodeId, t: SimTime) -> Option<(usize, FaultKind)> {
        // Cheap bounds pre-filter: most deliveries fall outside every window.
        if self.first_start.is_none_or(|s| t < s) || self.last_end.is_some_and(|e| t >= e) {
            return None;
        }
        self.windows
            .iter()
            .enumerate()
            .find(|(_, w)| w.active_at(t) && w.scope.covers(from, to))
            .map(|(i, w)| (i, w.kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn crash_window_drops_only_traffic_into_the_node_during_the_window() {
        let s = FaultSchedule::new().crash(NodeId(3), t(10), t(20));
        // Before, at-end and after: delivered.
        assert_eq!(s.verdict(NodeId(0), NodeId(3), t(9)), None);
        assert_eq!(
            s.verdict(NodeId(0), NodeId(3), t(20)),
            None,
            "end exclusive"
        );
        // During: dropped, including self-timers; outbound survives.
        assert_eq!(
            s.verdict(NodeId(0), NodeId(3), t(10)),
            Some((0, FaultKind::BrokerCrash)),
            "start inclusive"
        );
        assert_eq!(
            s.verdict(NodeId(3), NodeId(3), t(15)),
            Some((0, FaultKind::BrokerCrash)),
            "timers die with the node"
        );
        assert_eq!(
            s.verdict(NodeId(3), NodeId(0), t(15)),
            None,
            "in-flight messages it sent before crashing still arrive"
        );
        assert!(s.is_down(NodeId(3), t(15)));
        assert!(!s.is_down(NodeId(3), t(20)));
    }

    #[test]
    fn partition_drops_both_directions_but_nobody_is_down() {
        let s = FaultSchedule::new().partition(NodeId(1), NodeId(2), t(5), t(6));
        assert_eq!(
            s.verdict(NodeId(1), NodeId(2), t(5)),
            Some((0, FaultKind::LinkPartition))
        );
        assert_eq!(
            s.verdict(NodeId(2), NodeId(1), t(5)),
            Some((0, FaultKind::LinkPartition))
        );
        assert_eq!(
            s.verdict(NodeId(1), NodeId(3), t(5)),
            None,
            "other links live"
        );
        assert!(!s.is_down(NodeId(1), t(5)));
        assert!(!s.is_down(NodeId(2), t(5)));
    }

    #[test]
    fn region_outage_covers_the_bfs_ball_on_any_topology() {
        let network = Network::grid(4, 7);
        let s = FaultSchedule::new().region_outage(&network, NodeId(5), 1, t(1), t(2));
        let OutageScope::Region(nodes) = &s.windows()[0].scope else {
            panic!("expected a region scope");
        };
        // Node 5 of a 4×4 grid has neighbors 1, 4, 6, 9.
        let mut got: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 4, 5, 6, 9]);
        for &n in nodes {
            assert!(s.is_down(n, t(1)));
            assert_eq!(
                s.verdict(NodeId(0), n, t(1)),
                Some((0, FaultKind::RegionOutage))
            );
        }
        assert_eq!(s.verdict(NodeId(0), NodeId(15), t(1)), None);
    }

    #[test]
    fn crash_storm_is_seeded_and_deterministic() {
        let horizon = t(600);
        let a = FaultSchedule::crash_storm(42, 16, 6, horizon, SimDuration::from_secs(30));
        let b = FaultSchedule::crash_storm(42, 16, 6, horizon, SimDuration::from_secs(30));
        assert_eq!(a, b, "same seed, same storm");
        assert_eq!(a.windows().len(), 6);
        for w in a.windows() {
            assert_eq!(w.kind, FaultKind::BrokerCrash);
            assert!(w.start < w.end);
            assert!(w.start >= SimTime::from_secs_f64(60.0));
            assert!(w.start <= SimTime::from_secs_f64(480.0));
        }
        let c = FaultSchedule::crash_storm(43, 16, 6, horizon, SimDuration::from_secs(30));
        assert_ne!(a, c, "different seed, different storm");
    }

    #[test]
    fn first_active_covering_window_wins() {
        let s = FaultSchedule::new()
            .crash(NodeId(1), t(10), t(30))
            .crash(NodeId(1), t(20), t(40));
        assert_eq!(s.verdict(NodeId(0), NodeId(1), t(25)).unwrap().0, 0);
        assert_eq!(s.verdict(NodeId(0), NodeId(1), t(35)).unwrap().0, 1);
    }

    #[test]
    fn empty_schedule_never_drops() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.verdict(NodeId(0), NodeId(1), t(0)), None);
        assert!(!s.is_down(NodeId(0), t(0)));
    }
}
