//! Deterministic fault injection: crash windows, link partitions, region
//! outages.
//!
//! A [`FaultSchedule`] is plain data — a list of [`OutageWindow`]s fixed
//! before the run starts — that the engine consults on the delivery path.
//! While a window is active, envelopes it covers are **dropped, not
//! delayed**: the engine records a [`DropRecord`] (when, which link, which
//! message kind, which window) instead of invoking the destination's
//! callback, so nothing vanishes silently and the delivery audit still
//! reconciles every lost event against an outage window.
//!
//! Three failure scopes are modelled:
//!
//! * **broker crash/restart** ([`OutageScope::Node`]): every envelope whose
//!   delivery instant falls inside the window and whose *destination* is the
//!   crashed node is dropped — including its own timers, which is how a
//!   restart loses pending timer state. In-flight messages the node sent
//!   before crashing still arrive (they were already on the wire).
//! * **link partition** ([`OutageScope::Link`]): envelopes between the two
//!   endpoints (either direction) are dropped; both nodes stay up and can
//!   route around the cut.
//! * **region outage** ([`OutageScope::Region`]): a set of nodes — typically
//!   everything within `radius` hops of an epicenter on *any*
//!   [`TopologyKind`](crate::topology::TopologyKind), computed by
//!   [`FaultSchedule::region_outage`] via BFS over the physical graph — all
//!   down for the window.
//!
//! Determinism: the schedule is immutable data and
//! [`verdict`](FaultSchedule::verdict) is a pure function of
//! `(from, to, instant)`, so the same schedule over the same seeded workload
//! drops the byte-identical envelope sequence. The seeded generator
//! [`FaultSchedule::crash_storm`] derives windows from a [`DetRng`] stream,
//! making randomized storms reproducible from a single seed. An **empty**
//! schedule is never installed by the engine (`set_faults` keeps the fast
//! path), so zero-fault runs stay byte-identical to a faultless build.

use crate::ids::NodeId;
use crate::random::{mix64, DetRng};
use crate::stats::TrafficClass;
use crate::time::{SimDuration, SimTime};
use crate::topology::Network;

/// What kind of failure an outage window models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A single broker is down and later restarts.
    BrokerCrash,
    /// A link drops all traffic between two nodes, both of which stay up.
    LinkPartition,
    /// A set of nodes (an area of the topology) is down.
    RegionOutage,
}

impl FaultKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BrokerCrash => "crash",
            FaultKind::LinkPartition => "partition",
            FaultKind::RegionOutage => "region",
        }
    }
}

/// Which envelopes an outage window covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutageScope {
    /// Everything delivered *to* this node (including its own timers).
    Node(NodeId),
    /// Everything between these two nodes, in either direction.
    Link(NodeId, NodeId),
    /// Everything delivered to any node in the set.
    Region(Vec<NodeId>),
}

impl OutageScope {
    /// Whether an envelope `from → to` falls under this scope.
    #[inline]
    fn covers(&self, from: NodeId, to: NodeId) -> bool {
        match self {
            OutageScope::Node(n) => to == *n,
            OutageScope::Link(a, b) => (from == *a && to == *b) || (from == *b && to == *a),
            OutageScope::Region(nodes) => nodes.contains(&to),
        }
    }
}

/// One failure interval: `[start, end)` in simulation time. At `end` the
/// broker restarts / the link heals; an envelope delivered exactly at `end`
/// goes through.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageWindow {
    /// The failure class this window models.
    pub kind: FaultKind,
    /// First instant of the outage (inclusive).
    pub start: SimTime,
    /// Restart/heal instant (exclusive — the fault is over at `end`).
    pub end: SimTime,
    /// Which envelopes the window covers.
    pub scope: OutageScope,
}

impl OutageWindow {
    /// Whether the window is active at `t`.
    #[inline]
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// The nodes this window takes down (empty for a partition — both
    /// endpoints stay up).
    pub fn down_nodes(&self) -> &[NodeId] {
        match &self.scope {
            OutageScope::Node(n) => std::slice::from_ref(n),
            OutageScope::Link(..) => &[],
            OutageScope::Region(nodes) => nodes,
        }
    }

    /// Human-readable scope label (`"broker 12"`, `"link 3↔4"`,
    /// `"region(5 nodes)"`).
    pub fn scope_label(&self) -> String {
        match &self.scope {
            OutageScope::Node(n) => format!("broker {}", n.0),
            OutageScope::Link(a, b) => format!("link {}-{}", a.0, b.0),
            OutageScope::Region(nodes) => format!("region({} nodes)", nodes.len()),
        }
    }
}

/// Why the engine dropped an envelope instead of delivering it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// An outage window covered the envelope; the payload is the index into
    /// [`FaultSchedule::windows`] (the first active covering window wins).
    Fault(usize),
    /// The link lost the message in flight ([`LossModel::fate`]).
    Loss,
    /// The message arrived corrupted and was discarded on receipt (the
    /// checksum-verify-then-drop model; [`LossModel::fate`]).
    Corruption,
}

impl DropCause {
    /// Short label for reports (`"fault"`, `"loss"`, `"corruption"`).
    pub fn label(self) -> &'static str {
        match self {
            DropCause::Fault(_) => "fault",
            DropCause::Loss => "loss",
            DropCause::Corruption => "corruption",
        }
    }

    /// The outage-window index, for fault-caused drops.
    pub fn window(self) -> Option<usize> {
        match self {
            DropCause::Fault(w) => Some(w),
            _ => None,
        }
    }
}

/// One envelope the engine dropped instead of delivering. The engine keeps
/// these in delivery order; downstream ledgers attribute losses to outage
/// windows (or to link loss/corruption) through the `cause`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropRecord {
    /// The delivery instant at which the drop happened.
    pub at: SimTime,
    /// Sender of the dropped envelope.
    pub from: NodeId,
    /// Destination that never saw it.
    pub to: NodeId,
    /// The message's kind label ([`crate::stats::Message::kind`]).
    pub kind: &'static str,
    /// The message's traffic class.
    pub class: TrafficClass,
    /// What dropped the envelope.
    pub cause: DropCause,
}

/// The sampled fate of one envelope on a lossy link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkFate {
    /// Delivered unharmed (the only fate on a lossless link).
    #[default]
    Intact,
    /// Vanished in flight; the receiver never sees it.
    Lost,
    /// Arrived bit-damaged; the receiver's checksum rejects it.
    Corrupted,
}

/// Seeded per-message probabilistic loss and corruption for cross-node
/// links.
///
/// Like the jittered fabric, the model is **stateless**: each message's fate
/// is a pure hash of `(seed, from, to, link_seq)`, so the same seeded
/// workload replays byte-identically and inserting one extra message never
/// perturbs the fate of the others. A lossless model (`loss_rate` and
/// `corruption_rate` both zero) is never installed by the engine
/// (`set_loss` keeps the fast path), so zero-loss runs stay byte-identical
/// to a loss-free build. Timers and other self-deliveries never traverse a
/// link and are exempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    /// Root seed for the fate stream (independent of the jitter seed).
    pub seed: u64,
    /// Probability that a message is lost in flight, in `[0, 1]`.
    pub loss_rate: f64,
    /// Probability that a surviving message arrives corrupted, in `[0, 1]`.
    pub corruption_rate: f64,
}

/// Salt separating the loss coin from the jitter stream ("LOSS").
const LOSS_SALT: u64 = 0x4c4f_5353;
/// Salt separating the corruption coin from the loss coin ("CORR").
const CORRUPT_SALT: u64 = 0x434f_5252;

impl LossModel {
    /// A model with the given rates (clamped to `[0, 1]`).
    pub fn new(seed: u64, loss_rate: f64, corruption_rate: f64) -> Self {
        LossModel {
            seed,
            loss_rate: loss_rate.clamp(0.0, 1.0),
            corruption_rate: corruption_rate.clamp(0.0, 1.0),
        }
    }

    /// Whether the model can never drop or corrupt anything (the engine
    /// refuses to install such a model, keeping the fast path).
    pub fn is_lossless(&self) -> bool {
        self.loss_rate <= 0.0 && self.corruption_rate <= 0.0
    }

    /// Uniform `[0,1)` coin for one message, keyed exactly like the jittered
    /// fabric's per-message sampling: a splitmix64 hash of the structured
    /// key, no sequential state.
    #[inline]
    fn coin(&self, from: NodeId, to: NodeId, link_seq: u64, salt: u64) -> f64 {
        let pair = ((from.0 as u64) << 32) | to.0 as u64;
        let word = mix64(
            self.seed
                ^ pair.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ link_seq.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ salt,
        );
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The fate of the `link_seq`-th message on the ordered link
    /// `from → to`. Pure — same arguments, same fate.
    #[inline]
    pub fn fate(&self, from: NodeId, to: NodeId, link_seq: u64) -> LinkFate {
        if self.loss_rate > 0.0 && self.coin(from, to, link_seq, LOSS_SALT) < self.loss_rate {
            return LinkFate::Lost;
        }
        if self.corruption_rate > 0.0
            && self.coin(from, to, link_seq, CORRUPT_SALT) < self.corruption_rate
        {
            return LinkFate::Corrupted;
        }
        LinkFate::Intact
    }
}

/// A structural defect in a [`FaultSchedule`], reported by
/// [`FaultSchedule::validate`] at install time instead of silently accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultScheduleError {
    /// `windows[index]` has `start >= end` (zero or negative duration).
    EmptyWindow {
        /// Index of the offending window.
        index: usize,
    },
    /// `windows[index]` starts before its predecessor (the schedule must be
    /// sorted by start so ledger attribution scans it in outage order).
    Unsorted {
        /// Index of the offending window.
        index: usize,
    },
    /// `windows[index]` starts at or after the run horizon and can never
    /// fire.
    BeyondHorizon {
        /// Index of the offending window.
        index: usize,
    },
}

impl std::fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultScheduleError::EmptyWindow { index } => {
                write!(f, "outage window {index} has a non-positive duration")
            }
            FaultScheduleError::Unsorted { index } => {
                write!(f, "outage window {index} starts before its predecessor")
            }
            FaultScheduleError::BeyondHorizon { index } => {
                write!(
                    f,
                    "outage window {index} starts at or after the run horizon"
                )
            }
        }
    }
}

impl std::error::Error for FaultScheduleError {}

/// A fixed, deterministic plan of failures for one run.
///
/// Build one with the chainable constructors ([`crash`](Self::crash),
/// [`partition`](Self::partition), [`region_outage`](Self::region_outage))
/// or generate a randomized-but-seeded storm with
/// [`crash_storm`](Self::crash_storm), then install it on the engine via
/// `Engine::set_faults`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<OutageWindow>,
    /// Earliest window start — a cheap pre-filter for the per-delivery check.
    first_start: Option<SimTime>,
    /// Latest window end.
    last_end: Option<SimTime>,
}

impl FaultSchedule {
    /// An empty schedule (never installed by the engine; keeps the
    /// zero-fault fast path).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Whether the schedule contains no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// All outage windows, in insertion order (the order `DropRecord.window`
    /// indexes).
    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }

    /// Append an arbitrary window.
    pub fn push(&mut self, window: OutageWindow) {
        debug_assert!(window.start < window.end, "empty outage window");
        self.first_start = Some(match self.first_start {
            Some(s) => s.min(window.start),
            None => window.start,
        });
        self.last_end = Some(match self.last_end {
            Some(e) => e.max(window.end),
            None => window.end,
        });
        self.windows.push(window);
    }

    /// Add a broker crash/restart window: `node` is down in `[start, end)`.
    pub fn crash(mut self, node: NodeId, start: SimTime, end: SimTime) -> Self {
        self.push(OutageWindow {
            kind: FaultKind::BrokerCrash,
            start,
            end,
            scope: OutageScope::Node(node),
        });
        self
    }

    /// Add a link partition window: all traffic between `a` and `b` (both
    /// directions) is dropped in `[start, end)`.
    pub fn partition(mut self, a: NodeId, b: NodeId, start: SimTime, end: SimTime) -> Self {
        self.push(OutageWindow {
            kind: FaultKind::LinkPartition,
            start,
            end,
            scope: OutageScope::Link(a, b),
        });
        self
    }

    /// Add a region outage: every broker within `radius` hops of
    /// `epicenter` on the physical graph (BFS — works over any topology
    /// kind) is down in `[start, end)`.
    pub fn region_outage(
        mut self,
        network: &Network,
        epicenter: NodeId,
        radius: u32,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        let nodes: Vec<NodeId> = (0..network.broker_count())
            .filter(|&b| network.grid_distance(epicenter.index(), b) <= radius)
            .map(|b| NodeId(b as u32))
            .collect();
        self.push(OutageWindow {
            kind: FaultKind::RegionOutage,
            start,
            end,
            scope: OutageScope::Region(nodes),
        });
        self
    }

    /// Generate a seeded storm of `count` broker crashes: victims drawn
    /// uniformly from `0..brokers`, starts uniform over the middle of
    /// `[0, horizon]` (10%–80%, so every crash has room to repair before the
    /// run ends), downtime exponential around `mean_down` (clamped to at
    /// least one tenth of it). The same seed always generates the same
    /// storm.
    pub fn crash_storm(
        seed: u64,
        brokers: usize,
        count: usize,
        horizon: SimTime,
        mean_down: SimDuration,
    ) -> Self {
        let mut rng = DetRng::new(seed);
        let mut schedule = FaultSchedule::new();
        let horizon_s = horizon.as_secs_f64();
        let mean_down_s = mean_down.as_secs_f64();
        for _ in 0..count {
            let node = NodeId(rng.index(brokers.max(1)) as u32);
            let start_s = rng.range_f64(0.1 * horizon_s, 0.8 * horizon_s);
            let down_s = rng.exponential(mean_down_s).max(0.1 * mean_down_s);
            schedule.push(OutageWindow {
                kind: FaultKind::BrokerCrash,
                start: SimTime::from_secs_f64(start_s),
                end: SimTime::from_secs_f64(start_s + down_s),
                scope: OutageScope::Node(node),
            });
        }
        // Keep the schedule in outage order so it validates: window indices
        // (and therefore ledger attribution) follow outage starts.
        schedule.windows.sort_by_key(|w| (w.start, w.end));
        schedule
    }

    /// Whether the windows are sorted by start instant (the invariant
    /// [`validate`](Self::validate) enforces at install time).
    fn is_sorted_by_start(&self) -> bool {
        self.windows.windows(2).all(|p| p[0].start <= p[1].start)
    }

    /// Structurally validate the schedule before installing it: every window
    /// must have positive duration, the windows must be sorted by start, and
    /// every window must start inside the run horizon (a window starting at
    /// or after `horizon` can never fire, which is always a configuration
    /// bug). Ends past the horizon are fine — a crash may outlive the run.
    pub fn validate(&self, horizon: SimTime) -> Result<(), FaultScheduleError> {
        for (index, w) in self.windows.iter().enumerate() {
            if w.start >= w.end {
                return Err(FaultScheduleError::EmptyWindow { index });
            }
            if index > 0 && w.start < self.windows[index - 1].start {
                return Err(FaultScheduleError::Unsorted { index });
            }
            if w.start >= horizon {
                return Err(FaultScheduleError::BeyondHorizon { index });
            }
        }
        Ok(())
    }

    /// Whether `node` is down (covered by an active Node/Region window) at
    /// `t`.
    pub fn is_down(&self, node: NodeId, t: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.active_at(t) && w.down_nodes().contains(&node))
    }

    /// The fault verdict for an envelope `from → to` delivered at `t`:
    /// `Some((window index, kind))` of the first active window covering it,
    /// `None` when it goes through. Pure — same arguments, same answer.
    #[inline]
    pub fn verdict(&self, from: NodeId, to: NodeId, t: SimTime) -> Option<(usize, FaultKind)> {
        debug_assert!(
            self.is_sorted_by_start(),
            "fault schedule must be sorted by window start (see validate())"
        );
        // Cheap bounds pre-filter: most deliveries fall outside every window.
        if self.first_start.is_none_or(|s| t < s) || self.last_end.is_some_and(|e| t >= e) {
            return None;
        }
        self.windows
            .iter()
            .enumerate()
            .find(|(_, w)| w.active_at(t) && w.scope.covers(from, to))
            .map(|(i, w)| (i, w.kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn crash_window_drops_only_traffic_into_the_node_during_the_window() {
        let s = FaultSchedule::new().crash(NodeId(3), t(10), t(20));
        // Before, at-end and after: delivered.
        assert_eq!(s.verdict(NodeId(0), NodeId(3), t(9)), None);
        assert_eq!(
            s.verdict(NodeId(0), NodeId(3), t(20)),
            None,
            "end exclusive"
        );
        // During: dropped, including self-timers; outbound survives.
        assert_eq!(
            s.verdict(NodeId(0), NodeId(3), t(10)),
            Some((0, FaultKind::BrokerCrash)),
            "start inclusive"
        );
        assert_eq!(
            s.verdict(NodeId(3), NodeId(3), t(15)),
            Some((0, FaultKind::BrokerCrash)),
            "timers die with the node"
        );
        assert_eq!(
            s.verdict(NodeId(3), NodeId(0), t(15)),
            None,
            "in-flight messages it sent before crashing still arrive"
        );
        assert!(s.is_down(NodeId(3), t(15)));
        assert!(!s.is_down(NodeId(3), t(20)));
    }

    #[test]
    fn partition_drops_both_directions_but_nobody_is_down() {
        let s = FaultSchedule::new().partition(NodeId(1), NodeId(2), t(5), t(6));
        assert_eq!(
            s.verdict(NodeId(1), NodeId(2), t(5)),
            Some((0, FaultKind::LinkPartition))
        );
        assert_eq!(
            s.verdict(NodeId(2), NodeId(1), t(5)),
            Some((0, FaultKind::LinkPartition))
        );
        assert_eq!(
            s.verdict(NodeId(1), NodeId(3), t(5)),
            None,
            "other links live"
        );
        assert!(!s.is_down(NodeId(1), t(5)));
        assert!(!s.is_down(NodeId(2), t(5)));
    }

    #[test]
    fn region_outage_covers_the_bfs_ball_on_any_topology() {
        let network = Network::grid(4, 7);
        let s = FaultSchedule::new().region_outage(&network, NodeId(5), 1, t(1), t(2));
        let OutageScope::Region(nodes) = &s.windows()[0].scope else {
            panic!("expected a region scope");
        };
        // Node 5 of a 4×4 grid has neighbors 1, 4, 6, 9.
        let mut got: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 4, 5, 6, 9]);
        for &n in nodes {
            assert!(s.is_down(n, t(1)));
            assert_eq!(
                s.verdict(NodeId(0), n, t(1)),
                Some((0, FaultKind::RegionOutage))
            );
        }
        assert_eq!(s.verdict(NodeId(0), NodeId(15), t(1)), None);
    }

    #[test]
    fn crash_storm_is_seeded_and_deterministic() {
        let horizon = t(600);
        let a = FaultSchedule::crash_storm(42, 16, 6, horizon, SimDuration::from_secs(30));
        let b = FaultSchedule::crash_storm(42, 16, 6, horizon, SimDuration::from_secs(30));
        assert_eq!(a, b, "same seed, same storm");
        assert_eq!(a.windows().len(), 6);
        for w in a.windows() {
            assert_eq!(w.kind, FaultKind::BrokerCrash);
            assert!(w.start < w.end);
            assert!(w.start >= SimTime::from_secs_f64(60.0));
            assert!(w.start <= SimTime::from_secs_f64(480.0));
        }
        let c = FaultSchedule::crash_storm(43, 16, 6, horizon, SimDuration::from_secs(30));
        assert_ne!(a, c, "different seed, different storm");
    }

    #[test]
    fn first_active_covering_window_wins() {
        let s = FaultSchedule::new()
            .crash(NodeId(1), t(10), t(30))
            .crash(NodeId(1), t(20), t(40));
        assert_eq!(s.verdict(NodeId(0), NodeId(1), t(25)).unwrap().0, 0);
        assert_eq!(s.verdict(NodeId(0), NodeId(1), t(35)).unwrap().0, 1);
    }

    #[test]
    fn empty_schedule_never_drops() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.verdict(NodeId(0), NodeId(1), t(0)), None);
        assert!(!s.is_down(NodeId(0), t(0)));
    }

    #[test]
    fn validate_rejects_unsorted_empty_and_never_firing_windows() {
        let ok = FaultSchedule::new()
            .crash(NodeId(0), t(1), t(5))
            .crash(NodeId(1), t(3), t(4));
        assert_eq!(ok.validate(t(100)), Ok(()));

        let unsorted =
            FaultSchedule::new()
                .crash(NodeId(0), t(10), t(20))
                .crash(NodeId(1), t(1), t(5));
        assert_eq!(
            unsorted.validate(t(100)),
            Err(FaultScheduleError::Unsorted { index: 1 })
        );

        let mut empty = FaultSchedule::new();
        empty.windows.push(OutageWindow {
            kind: FaultKind::BrokerCrash,
            start: t(5),
            end: t(5),
            scope: OutageScope::Node(NodeId(0)),
        });
        assert_eq!(
            empty.validate(t(100)),
            Err(FaultScheduleError::EmptyWindow { index: 0 })
        );

        let late = FaultSchedule::new().crash(NodeId(0), t(200), t(300));
        assert_eq!(
            late.validate(t(100)),
            Err(FaultScheduleError::BeyondHorizon { index: 0 })
        );
        // Ends past the horizon are fine — the crash simply outlives the run.
        let overhang = FaultSchedule::new().crash(NodeId(0), t(50), t(300));
        assert_eq!(overhang.validate(t(100)), Ok(()));
    }

    #[test]
    fn crash_storm_validates_out_of_the_box() {
        let horizon = t(600);
        let s = FaultSchedule::crash_storm(42, 16, 6, horizon, SimDuration::from_secs(30));
        assert_eq!(s.validate(horizon), Ok(()));
    }

    #[test]
    fn loss_model_fates_are_pure_and_rate_shaped() {
        let m = LossModel::new(7, 0.1, 0.05);
        assert!(!m.is_lossless());
        // Pure: same key, same fate; different seq, independent fates.
        for seq in 0..64 {
            assert_eq!(
                m.fate(NodeId(0), NodeId(1), seq),
                m.fate(NodeId(0), NodeId(1), seq)
            );
        }
        let n = 100_000u64;
        let mut lost = 0u64;
        let mut corrupted = 0u64;
        for seq in 0..n {
            match m.fate(NodeId(0), NodeId(1), seq) {
                LinkFate::Lost => lost += 1,
                LinkFate::Corrupted => corrupted += 1,
                LinkFate::Intact => {}
            }
        }
        let loss_rate = lost as f64 / n as f64;
        // Corruption is sampled on survivors of the loss coin.
        let corruption_rate = corrupted as f64 / (n - lost) as f64;
        assert!((loss_rate - 0.1).abs() < 0.01, "observed loss {loss_rate}");
        assert!(
            (corruption_rate - 0.05).abs() < 0.01,
            "observed corruption {corruption_rate}"
        );
        // The two links of a pair and different seeds draw independent coins.
        let fwd: Vec<LinkFate> = (0..32).map(|s| m.fate(NodeId(0), NodeId(1), s)).collect();
        let rev: Vec<LinkFate> = (0..32).map(|s| m.fate(NodeId(1), NodeId(0), s)).collect();
        assert_ne!(fwd, rev);
    }

    #[test]
    fn lossless_model_is_detected_and_never_drops() {
        let m = LossModel::new(3, 0.0, 0.0);
        assert!(m.is_lossless());
        for seq in 0..1000 {
            assert_eq!(m.fate(NodeId(0), NodeId(1), seq), LinkFate::Intact);
        }
    }

    #[test]
    fn drop_cause_labels_and_window_accessor() {
        assert_eq!(DropCause::Fault(3).label(), "fault");
        assert_eq!(DropCause::Fault(3).window(), Some(3));
        assert_eq!(DropCause::Loss.label(), "loss");
        assert_eq!(DropCause::Loss.window(), None);
        assert_eq!(DropCause::Corruption.label(), "corruption");
    }
}
