//! # mhh-suite — reproduction of "MHH: A Novel Protocol for Mobility
//! Management in Publish/Subscribe Systems" (ICPP 2007)
//!
//! This umbrella crate re-exports the workspace members under short names and
//! hosts the runnable examples and the cross-crate integration tests.
//!
//! * [`simnet`] — deterministic discrete-event network simulator (grid
//!   topologies, MST overlays, FIFO links, hop accounting).
//! * [`pubsub`] — content-based publish/subscribe substrate (events, filters,
//!   covering, filter tables, reverse-path-forwarding brokers, queues).
//! * [`mhh`] — the paper's contribution: the multi-hop handoff protocol.
//! * [`baselines`] — the comparison protocols: sub-unsub and home-broker.
//! * [`mobility`] — pluggable deterministic mobility models (uniform random,
//!   random waypoint, Manhattan grid, hotspot commuter, trace playback) and
//!   the parallel sweep executor.
//! * [`mobsim`] — the evaluation harness: workloads, scenario and protocol
//!   registries, the fluent [`mobsim::Sim`] builder, metrics and the
//!   Figure 5 / Figure 6 / model-matrix sweeps.
//!
//! ## Quick start
//!
//! One fluent chain configures and runs any scenario × protocol × mobility
//! combination:
//!
//! ```
//! use mhh_suite::mobsim::Sim;
//!
//! let result = Sim::scenario("trace-smoke").protocol("mhh").run().unwrap();
//! assert!(result.reliable(), "MHH delivers exactly-once and in order");
//! assert!(result.handoffs > 0);
//! ```
//!
//! The generic fast path is still there for the builtin protocols:
//!
//! ```
//! use mhh_suite::mobsim::{run_scenario, Protocol, ScenarioConfig};
//!
//! let result = run_scenario(&ScenarioConfig::small(), Protocol::Mhh);
//! assert!(result.reliable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mhh_baselines as baselines;
pub use mhh_core as mhh;
pub use mhh_mobility as mobility;
pub use mhh_mobsim as mobsim;
pub use mhh_pubsub as pubsub;
pub use mhh_simnet as simnet;
