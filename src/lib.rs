//! # mhh-suite — reproduction of "MHH: A Novel Protocol for Mobility
//! Management in Publish/Subscribe Systems" (ICPP 2007)
//!
//! This umbrella crate re-exports the workspace members under short names and
//! hosts the runnable examples and the cross-crate integration tests.
//!
//! * [`simnet`] — deterministic discrete-event network simulator (grid
//!   topologies, MST overlays, FIFO links, hop accounting).
//! * [`pubsub`] — content-based publish/subscribe substrate (events, filters,
//!   covering, filter tables, reverse-path-forwarding brokers, queues).
//! * [`mhh`] — the paper's contribution: the multi-hop handoff protocol.
//! * [`baselines`] — the comparison protocols: sub-unsub and home-broker.
//! * [`mobility`] — pluggable deterministic mobility models (uniform random,
//!   random waypoint, Manhattan grid, hotspot commuter, trace playback) and
//!   the parallel sweep executor.
//! * [`mobsim`] — the evaluation harness: workloads, scenario registry,
//!   metrics and the Figure 5 / Figure 6 / model-matrix sweeps.
//!
//! ## Quick start
//!
//! ```
//! use mhh_suite::mobsim::{run_scenario, Protocol, ScenarioConfig};
//!
//! // A small deterministic scenario (the paper-size defaults live in
//! // `ScenarioConfig::paper_defaults()`).
//! let config = ScenarioConfig::small();
//! let result = run_scenario(&config, Protocol::Mhh);
//! assert!(result.reliable(), "MHH delivers exactly-once and in order");
//! assert!(result.handoffs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mhh_baselines as baselines;
pub use mhh_core as mhh;
pub use mhh_mobility as mobility;
pub use mhh_mobsim as mobsim;
pub use mhh_pubsub as pubsub;
pub use mhh_simnet as simnet;
