//! Integration tests of the object-safe protocol layer and the `Sim`
//! facade: registry round-trips, byte-identity of dyn-dispatched runs
//! against the generic fast path, external protocol registration, and the
//! parameter-point-keyed matrix.

use mhh_suite::mobility::ModelKind;
use mhh_suite::mobsim::protocols::{self, ProtocolRegistry, ProtocolSpec};
use mhh_suite::mobsim::{mobility_matrix, run_scenario, run_spec, Protocol, Sim, SimError};
use mhh_suite::pubsub::broker::NoProtocol;
use mhh_suite::pubsub::{erase, BrokerId, Deployment, DeploymentConfig, DynProtocol};

/// The paper-fig5 environment scaled down so six full runs (three protocols
/// × two dispatch paths) stay test-suite fast; the preset's seed (and hence
/// its workload generator) is kept.
fn fig5_seeded() -> mhh_suite::mobsim::ScenarioConfig {
    Sim::scenario("paper-fig5")
        .grid_side(4)
        .clients_per_broker(3)
        .duration_s(400.0)
        .configure(|c| {
            c.conn_mean_s = 40.0;
            c.disc_mean_s = 40.0;
            c.publish_interval_s = 20.0;
        })
        .build_config()
        .expect("paper-fig5 is registered")
}

#[test]
fn registry_round_trip_every_name_constructs_and_self_reports() {
    let registry = ProtocolRegistry::global();
    assert!(
        registry.len() >= 3,
        "the builtin three must always be registered"
    );
    for expected in ["mhh", "sub-unsub", "home-broker"] {
        assert!(
            registry.find(expected).is_some(),
            "builtin protocol {expected} missing"
        );
    }
    let config = fig5_seeded();
    let network = config.build_network();
    for spec in registry.specs() {
        let mut factory = spec.instantiate(&config, &network);
        // One instance per broker; each must self-report a name that
        // round-trips to its registry entry.
        for b in 0..3 {
            let proto = factory(BrokerId(b));
            assert!(
                proto.name() == spec.name() || proto.name() == spec.label(),
                "{}: constructed protocol calls itself {:?}",
                spec.name(),
                proto.name()
            );
        }
    }
}

#[test]
fn dyn_dispatched_fig5_runs_are_byte_identical_to_generic_runs() {
    let config = fig5_seeded();
    assert_eq!(config.seed, 0x4d48_485f_3230, "paper-fig5 seed preserved");
    let registry = ProtocolRegistry::builtin();
    for protocol in Protocol::ALL {
        let generic = run_scenario(&config, protocol);
        let spec = registry.find(protocol.name()).expect("builtin");
        let erased = run_spec(&config, spec);
        assert_eq!(
            format!("{generic:?}"),
            format!("{erased:?}"),
            "{}: dyn dispatch must not change any metric",
            protocol.label()
        );
        assert!(generic.handoffs > 0, "workload must move clients");
    }
}

#[test]
fn fluent_builder_runs_scenarios_by_name() {
    let result = Sim::scenario("trace-smoke").protocol("mhh").run().unwrap();
    assert_eq!(result.protocol, "MHH");
    assert_eq!(result.handoffs, 5, "trace-smoke replays five moves");
    assert!(result.reliable(), "{:?}", result.audit);

    match Sim::scenario("missing-scenario").run() {
        Err(SimError::UnknownScenario { name, available }) => {
            assert_eq!(name, "missing-scenario");
            assert!(available.contains(&"paper-fig5".to_string()));
        }
        other => panic!("expected UnknownScenario, got {other:?}"),
    }
    match Sim::scenario("trace-smoke").protocol("missing-proto").run() {
        Err(SimError::UnknownProtocol { name, available }) => {
            assert_eq!(name, "missing-proto");
            assert!(available.contains(&"mhh".to_string()));
        }
        other => panic!("expected UnknownProtocol, got {other:?}"),
    }
}

/// A protocol this crate never heard of joins through the process-wide
/// registry and runs through the same facade. `NoProtocol` (no mobility
/// support) doubles as the external protocol; its runs drop events for
/// in-flight clients, which the audit makes visible.
#[test]
fn externally_registered_protocol_runs_via_the_facade() {
    protocols::register(ProtocolSpec::new(
        "static-external",
        "static",
        "no mobility support (registered by an integration test)",
        |_config, _network| Box::new(|_broker| erase(NoProtocol)),
    ));
    let result = Sim::config(fig5_seeded())
        .protocol("static-external")
        .run()
        .expect("registered protocol resolves by name");
    assert_eq!(result.protocol, "static");
    assert!(result.handoffs > 0);
    // No mobility support: nothing is ever buffered, so anything published
    // while a client was away is simply gone.
    assert!(
        result.audit.lost > 0,
        "the static baseline must lose events under mobility: {:?}",
        result.audit
    );
}

/// One model kind at several parameter points in a single matrix — the
/// ROADMAP item the label-keyed cells could not express.
#[test]
fn matrix_holds_one_kind_at_several_parameter_points() {
    let fast = ModelKind::HotspotCommuter { hotspots: 1 };
    let spread = ModelKind::HotspotCommuter { hotspots: 8 };
    let models = [fast.clone(), spread.clone()];
    let matrix = mobility_matrix(&fig5_seeded(), &models);
    assert_eq!(matrix.models().len(), 2, "both parameter points present");
    for model in &models {
        for proto in ["MHH", "sub-unsub", "HB"] {
            assert!(
                matrix.cell(model, proto).is_some(),
                "missing cell {model} × {proto}"
            );
        }
    }
}

/// The dyn layer also serves hand-built deployments: one non-generic
/// function can drive any registry protocol.
#[test]
fn hand_built_deployments_run_registry_protocols() {
    let dep_config = DeploymentConfig {
        grid_side: 3,
        seed: 5,
        ..DeploymentConfig::default()
    };
    let clients = vec![mhh_suite::pubsub::ClientSpec {
        filter: mhh_suite::pubsub::Filter::single("k", mhh_suite::pubsub::Op::Eq, 1i64),
        home: BrokerId(0),
        mobile: true,
        initially_attached: true,
    }];
    let scenario = fig5_seeded();
    let network = scenario.build_network();
    for spec in ProtocolRegistry::builtin().specs() {
        let factory = spec.instantiate(&scenario, &network);
        let dep: Deployment<Box<dyn DynProtocol>> =
            Deployment::build(&dep_config, &clients, factory);
        assert_eq!(
            dep.brokers().count(),
            9,
            "{}: deployment built",
            spec.name()
        );
    }
}
