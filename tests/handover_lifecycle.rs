//! Integration tests of the first-class handover lifecycle: proclaimed
//! moves end to end (workload → client → broker → protocol) and the
//! per-handover [`HandoverLedger`](mhh_suite::mobsim::HandoverLedger).
//!
//! The headline assertions mirror the paper's §4.1 claim: on the *same*
//! move schedule, proclaiming the destination lets MHH migrate the
//! subscription ahead of the client, so the per-handover first-delivery gap
//! shrinks — and none of the delivery guarantees are given up on the way.

use mhh_suite::mobility::ModelKind;
use mhh_suite::mobsim::protocols::ProtocolRegistry;
use mhh_suite::mobsim::{
    run_scenario, run_spec, HandoverKind, Protocol, RunResult, ScenarioConfig, Sim, Workload,
};
use mhh_suite::simnet::random::DetRng;

/// The paper-fig5 environment scaled down for test speed; the preset's seed
/// (and therefore its workload generator) is kept, so this is the fig5
/// workload at reduced scale.
fn fig5_seeded() -> ScenarioConfig {
    Sim::scenario("paper-fig5")
        .grid_side(4)
        .clients_per_broker(3)
        .duration_s(400.0)
        .configure(|c| {
            c.conn_mean_s = 40.0;
            c.disc_mean_s = 40.0;
            c.publish_interval_s = 20.0;
        })
        .build_config()
        .expect("paper-fig5 is registered")
}

/// Acceptance criterion: on the paper-fig5 workload with
/// `proclaimed_fraction = 1.0`, MHH's mean per-handover first-delivery gap
/// (from the ledger) is strictly lower than the reactive run on the same
/// seed.
#[test]
fn proclaimed_fig5_run_strictly_beats_reactive_on_first_delivery_gap() {
    let reactive_cfg = fig5_seeded();
    let proclaimed_cfg = fig5_seeded().with_proclaimed_fraction(1.0);
    let reactive = run_scenario(&reactive_cfg, Protocol::Mhh);
    let proclaimed = run_scenario(&proclaimed_cfg, Protocol::Mhh);

    // Paired: the proclamation flag must not perturb the move schedule.
    assert_eq!(reactive.handoffs, proclaimed.handoffs);
    assert!(reactive.handoffs > 0, "workload must move clients");
    assert_eq!(reactive.proclaimed_handoffs(), 0);
    assert_eq!(proclaimed.proclaimed_handoffs(), proclaimed.handoffs);
    assert_eq!(proclaimed.reactive_handoffs(), 0);

    // Both sides keep MHH's exactly-once ordered guarantee.
    assert!(reactive.reliable(), "{:?}", reactive.audit);
    assert!(proclaimed.reliable(), "{:?}", proclaimed.audit);

    // The §4.1 payoff, read from the ledger.
    let reactive_gap = reactive
        .mean_gap_ms(HandoverKind::Reactive)
        .expect("reactive handoffs saw deliveries");
    let proclaimed_gap = proclaimed
        .mean_gap_ms(HandoverKind::Proclaimed)
        .expect("proclaimed handoffs saw deliveries");
    assert!(
        proclaimed_gap < reactive_gap,
        "proclaimed mean gap {proclaimed_gap} ms must be strictly below \
         reactive {reactive_gap} ms"
    );
    // The aggregates are the same numbers (derived from the ledger).
    assert_eq!(proclaimed.avg_handoff_delay_ms, proclaimed_gap);
    assert_eq!(reactive.avg_handoff_delay_ms, reactive_gap);
}

/// Acceptance criterion: dyn-protocol runs remain byte-identical to generic
/// runs with the ledger enabled — on the proclaimed workload, where the
/// ledger is populated with proclaimed records.
#[test]
fn dyn_runs_stay_byte_identical_with_the_ledger_enabled() {
    let config = fig5_seeded().with_proclaimed_fraction(1.0);
    let registry = ProtocolRegistry::builtin();
    for protocol in Protocol::ALL {
        let generic = run_scenario(&config, protocol);
        let spec = registry.find(protocol.name()).expect("builtin");
        let erased = run_spec(&config, spec);
        assert_eq!(
            format!("{generic:?}"),
            format!("{erased:?}"),
            "{}: dyn dispatch must not change any metric or ledger record",
            protocol.label()
        );
        assert!(
            generic.proclaimed_handoffs() > 0,
            "{}: the ledger must carry proclaimed records",
            protocol.label()
        );
    }
}

/// FIFO-dependent property test: a proclaimed MHH handover never loses or
/// duplicates events. The subscription-migration handshake relies on the
/// links being FIFO (the migration ack flushes behind any in-transit
/// events); this samples seeds and mobility models to exercise many
/// interleavings of proclaimed migrations with event traffic.
#[test]
fn proclaimed_mhh_handovers_never_lose_or_duplicate() {
    let mut sampler = DetRng::new(0x48_414e_444f);
    let models = [
        ModelKind::UniformRandom,
        ModelKind::ManhattanGrid,
        ModelKind::GroupPlatoon {
            platoon_size: 3,
            jitter_s: 5.0,
        },
    ];
    for case in 0..6 {
        let model = &models[case % models.len()];
        let config = ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 3,
            mobile_fraction: 0.35,
            conn_mean_s: 15.0 + sampler.range_f64(0.0, 30.0),
            disc_mean_s: 10.0 + sampler.range_f64(0.0, 30.0),
            publish_interval_s: 8.0,
            duration_s: 350.0,
            seed: sampler.next_u64(),
            ..ScenarioConfig::paper_defaults()
        }
        .with_mobility(model.clone())
        .with_proclaimed_fraction(1.0);
        let r = run_scenario(&config, Protocol::Mhh);
        assert!(r.handoffs > 0, "case {case} ({model}): no handoffs");
        assert_eq!(
            r.proclaimed_handoffs(),
            r.handoffs,
            "case {case} ({model}): every move proclaimed"
        );
        assert_eq!(r.audit.lost, 0, "case {case} ({model}): {:?}", r.audit);
        assert_eq!(
            r.audit.duplicates, 0,
            "case {case} ({model}): {:?}",
            r.audit
        );
        assert_eq!(
            r.audit.out_of_order, 0,
            "case {case} ({model}): {:?}",
            r.audit
        );
    }
}

/// Paired-workload test: the ledger's per-handover counts sum exactly to
/// the run-level aggregate metrics — for the derived handoff/delay numbers
/// and for the partitioned loss/duplicate counts, including a protocol that
/// actually loses events (home-broker under fast movement).
#[test]
fn ledger_per_handover_counts_sum_to_the_aggregates() {
    // Fast movement so home-broker's in-transit loss window is exercised.
    let config = ScenarioConfig {
        grid_side: 5,
        clients_per_broker: 3,
        mobile_fraction: 0.3,
        conn_mean_s: 2.0,
        disc_mean_s: 20.0,
        publish_interval_s: 4.0,
        duration_s: 500.0,
        seed: 6,
        ..ScenarioConfig::paper_defaults()
    };
    let check = |r: &RunResult| {
        assert_eq!(r.handoffs, r.ledger.handoff_count(), "{}", r.protocol);
        assert_eq!(
            r.delay_samples,
            r.ledger.delays_ms().len() as u64,
            "{}",
            r.protocol
        );
        assert_eq!(r.avg_handoff_delay_ms, r.ledger.mean_delay_ms());
        assert_eq!(
            r.handoffs,
            r.proclaimed_handoffs() + r.reactive_handoffs(),
            "{}: kinds partition the handoffs",
            r.protocol
        );
        // The disruption windows partition each mover's timeline, so the
        // per-handover loss/duplicate counts sum exactly to the audit.
        assert_eq!(
            r.ledger.total_lost(),
            r.audit.lost,
            "{}: ledger loss must reconcile with the audit",
            r.protocol
        );
        assert_eq!(
            r.ledger.total_duplicates(),
            r.audit.duplicates,
            "{}: ledger duplicates must reconcile with the audit",
            r.protocol
        );
    };
    for protocol in Protocol::ALL {
        let r = run_scenario(&config, protocol);
        check(&r);
    }
    let hb = run_scenario(&config, Protocol::HomeBroker);
    assert!(
        hb.audit.lost > 0,
        "the reconciliation must be exercised on real loss: {:?}",
        hb.audit
    );
    // And on a proclaimed run of the same scenario.
    let proclaimed = run_scenario(&config.with_proclaimed_fraction(1.0), Protocol::Mhh);
    check(&proclaimed);
}

/// The platoon scenario drives whole groups into the same destination
/// broker: the workload must show members of one platoon reconnecting to
/// identical broker sequences, and the run must stay reliable under the
/// resulting bulk migration.
#[test]
fn platoon_convoy_bulk_migrates_and_stays_reliable() {
    let config = Sim::scenario("platoon-convoy")
        .grid_side(4)
        .clients_per_broker(3)
        .duration_s(400.0)
        .configure(|c| {
            c.conn_mean_s = 40.0;
            c.disc_mean_s = 20.0;
            c.publish_interval_s = 20.0;
            c.mobile_fraction = 1.0;
        })
        .build_config()
        .expect("platoon-convoy is registered");
    let ModelKind::GroupPlatoon { platoon_size, .. } = config.mobility else {
        panic!("platoon-convoy must carry the group-platoon model");
    };

    // Workload level: every mobile member of a platoon follows the same
    // broker sequence.
    let w = Workload::generate(&config);
    use mhh_suite::pubsub::ClientAction;
    let mut routes: std::collections::BTreeMap<u32, Vec<(u32, Vec<u32>)>> = Default::default();
    for (i, _) in w.clients.iter().enumerate() {
        let client = i as u32;
        let mut moves: Vec<(mhh_suite::simnet::SimTime, u32)> = w
            .timeline
            .iter()
            .filter(|e| e.client.0 == client)
            .filter_map(|e| match e.action {
                ClientAction::Reconnect { broker } => Some((e.at, broker.0)),
                _ => None,
            })
            .collect();
        moves.sort_by_key(|(at, _)| *at);
        let dests: Vec<u32> = moves.into_iter().map(|(_, b)| b).collect();
        if !dests.is_empty() {
            routes
                .entry(client / platoon_size as u32)
                .or_default()
                .push((client, dests));
        }
    }
    let mut checked_platoons = 0;
    for (platoon, members) in &routes {
        if members.len() < 2 {
            continue;
        }
        checked_platoons += 1;
        // Members may join at different points (their own homes), but from
        // the shared trajectory onward the destinations coincide: compare
        // the common suffix.
        let shortest = members.iter().map(|(_, d)| d.len()).min().unwrap();
        let suffix = |d: &Vec<u32>| d[d.len() - shortest..].to_vec();
        let reference = suffix(&members[0].1);
        for (client, dests) in members {
            assert_eq!(
                suffix(dests),
                reference,
                "platoon {platoon} member {client} left the convoy"
            );
        }
    }
    assert!(checked_platoons > 0, "workload must contain real platoons");
    assert!(w.proclaimed_count == w.move_count, "convoy moves proclaim");

    // Run level: bulk migration stays exactly-once/ordered under MHH.
    let r = run_scenario(&config, Protocol::Mhh);
    assert!(r.handoffs > 0);
    assert!(r.reliable(), "{:?}", r.audit);
}

/// The budget knob surfaces through the fluent builder and reports skipped
/// points instead of silently truncating.
#[test]
fn builder_budget_reports_skipped_matrix_cells() {
    let matrix = Sim::scenario("paper-fig5")
        .grid_side(3)
        .clients_per_broker(2)
        .duration_s(120.0)
        .registry(ProtocolRegistry::builtin())
        .workers(2)
        .budget_ms(0)
        .matrix(&[ModelKind::UniformRandom, ModelKind::ManhattanGrid])
        .expect("paper-fig5 is registered");
    assert!(matrix.points.is_empty());
    assert_eq!(matrix.skipped.len(), 6, "2 models × 3 protocols skipped");
}
