//! Differential property tests of the serialize-once fan-out path: the
//! cached [`CachedEvent`](mhh_suite::pubsub::CachedEvent) mode and the
//! clone-per-subscriber baseline must produce byte-identical delivery
//! results — serialization is an accounting model, never behavior — while
//! the accounting itself must reconcile exactly with the delivery audit and
//! show the order-of-magnitude allocation win the cache exists for.

use mhh_suite::mobsim::{run_scenario, scenarios, FanoutMode, Protocol, RunResult, ScenarioConfig};

/// A small storm: 20 publishers, 120 subscribers on a 3×3 grid, modeled
/// payloads. Full fan-out — every subscriber's filter matches every event —
/// so byte totals reconcile in closed form.
fn mini_storm() -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 3,
        publish_interval_s: 20.0,
        duration_s: 60.0,
        seed: 0xD1FF,
        payload_bytes_mean: 256,
        track_mem: true,
        storm_publishers: 20,
        storm_subscribers: 120,
        ..ScenarioConfig::paper_defaults()
    }
}

/// A seeded churn scenario with payload modeling on: mobile clients,
/// handoffs, buffered event migration — the path where cached wire forms
/// ride through protocol queues and transfers.
fn churn() -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 4,
        clients_per_broker: 3,
        mobile_fraction: 0.25,
        conn_mean_s: 40.0,
        disc_mean_s: 40.0,
        publish_interval_s: 20.0,
        duration_s: 400.0,
        seed: 11,
        payload_bytes_mean: 200,
        ..ScenarioConfig::paper_defaults()
    }
}

fn run_both(config: &ScenarioConfig, protocol: Protocol) -> (RunResult, RunResult) {
    let cached = run_scenario(
        &config.clone().with_fanout_mode(FanoutMode::Cached),
        protocol,
    );
    let clone = run_scenario(
        &config.clone().with_fanout_mode(FanoutMode::CloneBaseline),
        protocol,
    );
    (cached, clone)
}

/// Strip the serialization-side counters (the only fields that *should*
/// differ between modes) and compare everything else byte for byte.
fn assert_delivery_identical(cached: &RunResult, clone: &RunResult, label: &str) {
    let strip = |r: &RunResult| {
        let mut r = r.clone();
        r.traffic.serializations = 0;
        r.traffic.bytes_serialized = 0;
        r.traffic.fanout_allocs = 0;
        r.traffic.cache_hits = 0;
        r.traffic.fanouts = 0;
        format!("{r:?}")
    };
    assert_eq!(
        strip(cached),
        strip(clone),
        "{label}: delivery stats, audit and ledgers must be byte-identical \
         between fan-out modes"
    );
}

#[test]
fn cached_and_clone_fanout_deliver_identically_across_seeded_churn() {
    for protocol in [Protocol::Mhh, Protocol::SubUnsub, Protocol::HomeBroker] {
        let (cached, clone) = run_both(&churn(), protocol);
        assert_delivery_identical(&cached, &clone, protocol.label());
        assert!(
            cached.traffic.delivery_bytes > 0,
            "payloads must be modeled"
        );
    }
    // Across seeds too, on the paper's own protocol.
    for seed in [12u64, 13] {
        let cfg = ScenarioConfig { seed, ..churn() };
        let (cached, clone) = run_both(&cfg, Protocol::Mhh);
        assert_delivery_identical(&cached, &clone, "mhh-seeded");
    }
}

#[test]
fn storm_byte_totals_reconcile_with_per_message_sizes() {
    let (cached, clone) = run_both(&mini_storm(), Protocol::Mhh);
    assert_delivery_identical(&cached, &clone, "mini-storm");

    // Full fan-out: every published event reaches every one of the 120
    // attached subscribers exactly once, so delivery bytes are exactly
    // (subscribers × Σ per-event wire size). The audit supplies the
    // delivered count; wire sizes come from the generated workload itself.
    let workload = mhh_suite::mobsim::Workload::generate(&mini_storm());
    let total_wire: u64 = workload
        .timeline
        .iter()
        .filter_map(|e| match &e.action {
            mhh_suite::pubsub::ClientAction::Publish(ev) => Some(ev.wire_size() as u64),
            _ => None,
        })
        .sum();
    assert!(total_wire > 0);
    assert_eq!(
        cached.audit.expected,
        workload.publish_count as u64 * 120,
        "full fan-out: every subscriber expects every event"
    );
    assert_eq!(cached.audit.delivered, cached.audit.expected, "no loss");
    assert_eq!(
        cached.traffic.delivery_bytes,
        120 * total_wire,
        "delivery bytes must equal subscribers × total published wire bytes"
    );
    assert_eq!(clone.traffic.delivery_bytes, cached.traffic.delivery_bytes);
}

#[test]
fn cached_fanout_saves_an_order_of_magnitude_on_storms() {
    let (cached, clone) = run_both(&mini_storm(), Protocol::Mhh);
    assert!(
        cached.traffic.fanout_allocs * 10 <= clone.traffic.fanout_allocs,
        "cached path must allocate ≥10× less: cached {} vs clone {}",
        cached.traffic.fanout_allocs,
        clone.traffic.fanout_allocs
    );
    assert!(
        cached.traffic.bytes_serialized * 10 <= clone.traffic.bytes_serialized,
        "cached path must serialize ≥10× fewer bytes: cached {} vs clone {}",
        cached.traffic.bytes_serialized,
        clone.traffic.bytes_serialized
    );
    assert!(
        cached.traffic.cache_hits > 0,
        "the cache must actually serve destinations"
    );
    // The memory tracker saw protocol buffers only if events were parked;
    // on a static storm it stays quiet, but the counters must at least be
    // internally consistent.
    assert_eq!(cached.traffic.fanouts, clone.traffic.fanouts);
    assert_eq!(
        cached.traffic.serializations, cached.traffic.fanout_allocs,
        "cached mode allocates exactly once per serialization"
    );
}

#[test]
fn retained_replay_preset_reaches_late_joiners() {
    let cfg = ScenarioConfig {
        storm_publishers: 10,
        storm_subscribers: 40,
        duration_s: 60.0,
        publish_interval_s: 15.0,
        ..scenarios::find("retained-replay")
            .expect("registered")
            .config
    };
    let (cached, clone) = run_both(&cfg, Protocol::Mhh);
    assert_delivery_identical(&cached, &clone, "retained-replay");
    // Late joiners received replayed retained events on connect: total
    // deliveries exceed what their post-join live stream alone explains is
    // hard to pin generically, but replay must at least produce deliveries
    // to the detached half that joined mid-run.
    assert!(cached.delivered_messages > 0);
}

#[test]
fn shared_subscription_groups_split_the_stream_deterministically() {
    // 12 publishers + 36 subscribers on 9 brokers: subscriber ids start at
    // 12 (a multiple of the group size) and land 4 per broker, so the
    // id-bucket groups coincide exactly with the per-broker populations —
    // each event collapses to exactly one delivery per broker.
    let cfg = ScenarioConfig {
        shared_group_size: 4,
        storm_publishers: 12,
        storm_subscribers: 36,
        late_subscriber_fraction: 0.0,
        ..mini_storm()
    };
    let (cached, clone) = run_both(&cfg, Protocol::Mhh);
    assert_delivery_identical(&cached, &clone, "shared-subscription");
    let no_groups = run_scenario(
        &ScenarioConfig {
            shared_group_size: 0,
            ..cfg.clone()
        },
        Protocol::Mhh,
    );
    assert_eq!(
        cached.delivered_messages * 4,
        no_groups.delivered_messages,
        "aligned groups of 4 must collapse fan-out to exactly one delivery \
         per group: grouped {} vs ungrouped {}",
        cached.delivered_messages,
        no_groups.delivered_messages
    );
    // Deterministic: the same grouped run reproduces byte for byte.
    let again = run_scenario(&cfg, Protocol::Mhh);
    assert_eq!(format!("{cached:?}"), format!("{again:?}"));
}
