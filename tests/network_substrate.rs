//! Integration tests of the link-level network substrate: the byte-identity
//! pin that anchors the topology/link refactor, FIFO-under-jitter property
//! loops, topology plumbing through the harness, and the mis-proclamation
//! knob.
//!
//! The golden files under `tests/goldens/` were captured from the
//! pre-refactor tree (constant-latency grid fabric, two-virtual-call
//! dispatch). Zero-jitter grid runs must keep reproducing them exactly:
//! the snapshot hashes the full `Debug` representation of every
//! `RunResult` — metrics, audit and every ledger record — so any drift in
//! delivery timing, ordering or accounting fails the pin. Regenerate
//! deliberately with `MHH_REGEN_GOLDENS=1 cargo test --test
//! network_substrate`.

use std::fmt::Write as _;

use mhh_suite::mobility::ModelKind;
use mhh_suite::mobsim::experiments::{figure5_in, figure6_in, FigureResult};
use mhh_suite::mobsim::protocols::ProtocolRegistry;
use mhh_suite::mobsim::report::{render_figure, to_json};
use mhh_suite::mobsim::{run_scenario, Protocol, ScenarioConfig, Sim, TopologyKind};
use mhh_suite::simnet::random::DetRng;

/// FNV-1a (64-bit offset basis and prime), pinning a Debug string
/// byte-for-byte.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The reduced-scale paper environment the goldens pin (zero jitter,
/// plain k×k grid — the pre-refactor network model).
fn golden_base() -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 4,
        clients_per_broker: 3,
        mobile_fraction: 0.25,
        conn_mean_s: 30.0,
        disc_mean_s: 40.0,
        publish_interval_s: 10.0,
        duration_s: 300.0,
        seed: 20070,
        ..ScenarioConfig::paper_defaults()
    }
}

/// One line per figure point: the headline numbers in the clear (reviewable
/// diffs) plus an FNV hash of the point's full `Debug` output (the actual
/// byte-identity pin, ledger records included).
fn snapshot(fig: &FigureResult) -> String {
    let mut points: Vec<_> = fig.points.iter().collect();
    points.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.protocol.cmp(&b.protocol)));
    let mut out = String::new();
    for p in points {
        let r = &p.result;
        let debug = format!("{r:?}");
        let _ = writeln!(
            out,
            "x={} proto={} handoffs={} mob_hops={} overhead={} delay_ms={} samples={} \
             audit=e{}/d{}/dup{}/p{}/l{}/o{} published={} delivered={} total_hops={} \
             debug_fnv={:016x}",
            p.x,
            p.protocol,
            r.handoffs,
            r.mobility_hops,
            r.overhead_per_handoff,
            r.avg_handoff_delay_ms,
            r.delay_samples,
            r.audit.expected,
            r.audit.delivered,
            r.audit.duplicates,
            r.audit.pending,
            r.audit.lost,
            r.audit.out_of_order,
            r.published,
            r.delivered_messages,
            r.total_hops,
            fnv1a(debug.as_bytes()),
        );
    }
    out
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/goldens/{name}.golden", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("MHH_REGEN_GOLDENS").is_some() {
        std::fs::create_dir_all(format!("{}/tests/goldens", env!("CARGO_MANIFEST_DIR")))
            .expect("create goldens dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e}; regen with MHH_REGEN_GOLDENS=1"));
    assert_eq!(
        actual, expected,
        "{name}: zero-jitter grid runs must stay byte-identical to the \
         pre-refactor goldens (regen deliberately with MHH_REGEN_GOLDENS=1)"
    );
}

#[test]
fn zero_jitter_grid_figure5_matches_pre_refactor_golden() {
    let fig = figure5_in(
        &ProtocolRegistry::builtin(),
        &golden_base(),
        &[5.0, 60.0],
        2,
    );
    check_golden("figure5_small", &snapshot(&fig));
}

#[test]
fn zero_jitter_grid_figure6_matches_pre_refactor_golden() {
    let fig = figure6_in(&ProtocolRegistry::builtin(), &golden_base(), &[3, 5], 2);
    check_golden("figure6_small", &snapshot(&fig));
}

/// FIFO-under-jitter property loop (satellite): across ≥ 5 seeds, every
/// synthetic mobility model and every buildable topology kind, MHH under
/// heavy link jitter + asymmetry keeps exactly-once *in-order* delivery.
/// Per-publisher order at every subscriber is the end-to-end shadow of the
/// per-link FIFO invariant (§4.1): the engine's channel clocks are the only
/// thing standing between a jittered link and a reordered migration ack, so
/// any FIFO violation surfaces as `out_of_order` (or loss) in the audit.
/// The per-link ordering itself is asserted directly at the engine level in
/// `mhh-simnet`'s `fifo_per_link_holds_under_jitter`.
#[test]
fn mhh_stays_reliable_under_jitter_across_models_and_topologies() {
    let topologies = [
        TopologyKind::Grid,
        TopologyKind::Torus,
        TopologyKind::ScaleFree { edges_per_node: 2 },
        TopologyKind::RandomGeometric { target_degree: 4.0 },
    ];
    let models = ModelKind::synthetic();
    let mut sampler = DetRng::new(0x0046_4946_4f4a_4954);
    let cases = topologies.len() * 2; // 8 seeds, every topology twice
    for case in 0..cases {
        let topology = topologies[case % topologies.len()].clone();
        let model = models[case % models.len()].clone();
        let config = ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 3,
            mobile_fraction: 0.35,
            conn_mean_s: 15.0 + sampler.range_f64(0.0, 30.0),
            disc_mean_s: 10.0 + sampler.range_f64(0.0, 20.0),
            publish_interval_s: 8.0,
            duration_s: 300.0,
            jitter_ms: 1 + sampler.next_below(25),
            link_asymmetry: sampler.range_f64(0.0, 0.4),
            seed: sampler.next_u64(),
            topology,
            ..ScenarioConfig::paper_defaults()
        }
        .with_mobility(model.clone());
        let r = run_scenario(&config, Protocol::Mhh);
        assert!(
            r.handoffs > 0,
            "case {case} ({model} on {}): no handoffs",
            config.topology
        );
        assert_eq!(
            (r.audit.lost, r.audit.duplicates, r.audit.out_of_order),
            (0, 0, 0),
            "case {case} ({model} on {}, jitter {} ms): {:?}",
            config.topology,
            config.jitter_ms,
            r.audit
        );
    }
}

/// The safety-interval derivation must stretch with the link model: the
/// sub-unsub baseline stays lossless under jitter, asymmetry and an open
/// degradation window because its wait covers the worst-case *path* — one
/// jitter allowance per overlay hop, since hop-by-hop forwarding samples
/// jitter on every link. The first loop runs jitter-only on a 6×6 grid
/// (large diameter, nothing masking an under-sized bound); the second adds
/// asymmetry and a degradation window.
#[test]
fn sub_unsub_safety_interval_covers_jittered_links() {
    for seed in [3u64, 14, 159] {
        let config = ScenarioConfig {
            grid_side: 6,
            clients_per_broker: 2,
            mobile_fraction: 0.3,
            conn_mean_s: 25.0,
            disc_mean_s: 20.0,
            publish_interval_s: 10.0,
            duration_s: 300.0,
            jitter_ms: 20,
            seed,
            ..ScenarioConfig::paper_defaults()
        };
        let r = run_scenario(&config, Protocol::SubUnsub);
        assert!(r.handoffs > 0, "seed {seed}: no handoffs");
        assert!(r.reliable(), "jitter-only seed {seed}: {:?}", r.audit);
    }
    for seed in [3u64, 14, 159] {
        let config = ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 3,
            mobile_fraction: 0.3,
            conn_mean_s: 25.0,
            disc_mean_s: 20.0,
            publish_interval_s: 10.0,
            duration_s: 300.0,
            jitter_ms: 15,
            link_asymmetry: 0.25,
            degraded_windows: vec![(100.0, 160.0, 2.5)],
            seed,
            ..ScenarioConfig::paper_defaults()
        };
        let r = run_scenario(&config, Protocol::SubUnsub);
        assert!(r.handoffs > 0, "seed {seed}: no handoffs");
        assert!(r.reliable(), "seed {seed}: {:?}", r.audit);
    }
}

/// Acceptance: the jittered scale-free preset runs end-to-end through the
/// fluent `Sim` facade and its topology label lands in the rendered report
/// and the JSON export.
#[test]
fn scale_free_jitter_preset_runs_end_to_end_with_topology_label() {
    let result = Sim::scenario("scale-free-jitter")
        .grid_side(4)
        .clients_per_broker(3)
        .duration_s(300.0)
        .configure(|c| {
            c.conn_mean_s = 40.0;
            c.disc_mean_s = 20.0;
            c.publish_interval_s = 15.0;
        })
        .run()
        .expect("preset is registered");
    assert_eq!(result.protocol, "MHH");
    assert!(result.handoffs > 0);
    assert!(result.reliable(), "{:?}", result.audit);

    // The sweep path carries the topology into reports and JSON.
    let base = Sim::scenario("scale-free-jitter")
        .grid_side(4)
        .clients_per_broker(3)
        .duration_s(240.0)
        .configure(|c| {
            c.conn_mean_s = 30.0;
            c.disc_mean_s = 15.0;
            c.publish_interval_s = 15.0;
        })
        .build_config()
        .unwrap();
    let fig = figure5_in(&ProtocolRegistry::builtin(), &base, &[20.0], 2);
    assert!(
        fig.points.iter().all(|p| p.topology == "scale-free(m=2)"),
        "{:?}",
        fig.points[0].topology
    );
    let text = render_figure(&fig);
    assert!(
        text.contains("topology: scale-free(m=2)"),
        "report must announce the topology:\n{text}"
    );
    assert!(
        text.contains("p50/p95/p99"),
        "report must carry the percentile panel:\n{text}"
    );
    let json = to_json(&fig);
    assert!(json.contains("\"topology\": \"scale-free(m=2)\""), "{json}");
    assert!(json.contains("\"gap_percentiles_ms\""), "{json}");
}

/// Mis-proclamation knob (satellite): a proclaiming client announces B but
/// reconnects at C, driving MHH through its pending-handoff/abort path. No
/// deliveries may be silently lost relative to the reactive run of the
/// identical move schedule.
#[test]
fn misproclaimed_moves_abort_cleanly_without_losing_deliveries() {
    for seed in [5u64, 77, 2024] {
        let base = ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 3,
            mobile_fraction: 0.35,
            conn_mean_s: 30.0,
            disc_mean_s: 25.0,
            publish_interval_s: 8.0,
            duration_s: 350.0,
            seed,
            ..ScenarioConfig::paper_defaults()
        };
        let reactive = run_scenario(&base, Protocol::Mhh);
        let misproclaimed = run_scenario(
            &base
                .clone()
                .with_proclaimed_fraction(1.0)
                .with_misproclaim_fraction(1.0),
            Protocol::Mhh,
        );
        // Identical physical move schedule.
        assert_eq!(reactive.handoffs, misproclaimed.handoffs, "seed {seed}");
        assert!(reactive.handoffs > 0, "seed {seed}: no movement");
        assert_eq!(
            misproclaimed.proclaimed_handoffs(),
            misproclaimed.handoffs,
            "seed {seed}: every move proclaimed (wrongly)"
        );
        // The §4.1 abort path must not cost a single delivery: exactly the
        // reactive run's loss (zero for MHH), no duplicates, no reordering.
        assert_eq!(
            misproclaimed.audit.lost, reactive.audit.lost,
            "seed {seed}: mis-proclamation silently lost deliveries: {:?} vs {:?}",
            misproclaimed.audit, reactive.audit
        );
        assert!(reactive.reliable(), "seed {seed}: {:?}", reactive.audit);
        assert!(
            misproclaimed.reliable(),
            "seed {seed}: {:?}",
            misproclaimed.audit
        );
    }
}

/// Regression test for the crossing-migration race: under extreme churn —
/// bulk platoon migrations with every move proclaimed, half of them
/// wrongly, over heavily jittered asymmetric links — a proclaimed move and
/// the handoff triggered by its misproclaimed reconnect used to travel the
/// same link in opposite roles, and the older migration's `cancel_prev` /
/// `sub_migration_ack` would tear down the filter entries the newer one
/// had just installed, black-holing the subscriber's events until an
/// unrelated migration crossed the same broker again. Fixed by guarding
/// `cancel_prev` against severing a newer outbound route, closing capture
/// windows only from the matching neighbor (label-checked ack removal),
/// and re-migrating queues that finalize after the root moved on.
#[test]
fn extreme_platoon_churn_under_jitter_stays_reliable() {
    let config = ScenarioConfig {
        grid_side: 5,
        clients_per_broker: 3,
        mobile_fraction: 0.4,
        conn_mean_s: 11.033631900428539,
        disc_mean_s: 9.230533266275568,
        publish_interval_s: 6.0,
        duration_s: 250.0,
        jitter_ms: 13,
        link_asymmetry: 0.3003620502119615,
        seed: 0xc623_2c5a_fbc8_e0cb,
        ..ScenarioConfig::paper_defaults()
    }
    .with_mobility(ModelKind::GroupPlatoon {
        platoon_size: 4,
        jitter_s: 5.0,
    })
    .with_proclaimed_fraction(1.0)
    .with_misproclaim_fraction(0.5);
    let r = run_scenario(&config, Protocol::Mhh);
    assert_eq!(
        (r.audit.lost, r.audit.duplicates, r.audit.out_of_order),
        (0, 0, 0),
        "{:?}",
        r.audit
    );
}

/// Mis-proclamation composes with the half-way knob and the other
/// protocols: a 50 % wrong-announcement run keeps sub-unsub lossless and
/// home-broker no worse than its reactive self.
#[test]
fn partial_misproclamation_keeps_baselines_honest() {
    let base = ScenarioConfig {
        grid_side: 4,
        clients_per_broker: 3,
        mobile_fraction: 0.3,
        conn_mean_s: 30.0,
        disc_mean_s: 25.0,
        publish_interval_s: 10.0,
        duration_s: 300.0,
        seed: 41,
        ..ScenarioConfig::paper_defaults()
    }
    .with_proclaimed_fraction(1.0)
    .with_misproclaim_fraction(0.5);
    let su = run_scenario(&base, Protocol::SubUnsub);
    assert!(su.reliable(), "{:?}", su.audit);
    let hb_reactive = run_scenario(
        &base.clone().with_proclaimed_fraction(0.0),
        Protocol::HomeBroker,
    );
    let hb = run_scenario(&base, Protocol::HomeBroker);
    assert_eq!(hb.audit.duplicates, 0, "{:?}", hb.audit);
    assert!(
        hb.audit.lost <= hb_reactive.audit.lost,
        "wrong announcements must not widen HB's loss window: {} vs {}",
        hb.audit.lost,
        hb_reactive.audit.lost
    );
}
