//! Integration tests asserting the qualitative *shapes* of the paper's
//! figures on reduced-scale sweeps: who wins, and in which direction the
//! curves move. Absolute numbers differ from the paper (different substrate
//! and scale); the orderings are what the reproduction checks.

use mhh_suite::mobsim::{figure5, figure6, Protocol, ScenarioConfig};

fn base() -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 5,
        clients_per_broker: 4,
        mobile_fraction: 0.25,
        conn_mean_s: 30.0,
        disc_mean_s: 60.0,
        publish_interval_s: 10.0,
        duration_s: 360.0,
        seed: 11,
        ..ScenarioConfig::paper_defaults()
    }
}

#[test]
fn figure5_shape_holds_at_reduced_scale() {
    let fig = figure5(&base(), &[2.0, 200.0]);

    // (a) message overhead per handoff: MHH below sub-unsub at both ends, and
    // far below it when clients move frequently (left end).
    for (i, _conn) in [2.0f64, 200.0].iter().enumerate() {
        let mhh = fig.overhead_series(Protocol::Mhh.label())[i].1;
        let su = fig.overhead_series(Protocol::SubUnsub.label())[i].1;
        assert!(
            mhh < su,
            "point {i}: MHH overhead {mhh} should be below sub-unsub {su}"
        );
    }
    // Home-broker's per-handoff overhead grows with the connection period
    // (triangle routing accumulates while the client sits still).
    let hb = fig.overhead_series(Protocol::HomeBroker.label());
    assert!(
        hb[1].1 > hb[0].1,
        "HB overhead should grow with the connection period: {hb:?}"
    );

    // (b) handoff delay: sub-unsub well above MHH; MHH and home-broker in the
    // same ballpark (within a factor of two here).
    for i in 0..2 {
        let mhh = fig.delay_series(Protocol::Mhh.label())[i].1;
        let su = fig.delay_series(Protocol::SubUnsub.label())[i].1;
        let hb = fig.delay_series(Protocol::HomeBroker.label())[i].1;
        assert!(su > mhh, "sub-unsub delay {su} must exceed MHH {mhh}");
        assert!(
            mhh < hb * 2.0 + 100.0,
            "MHH delay {mhh} should be comparable to home-broker {hb}"
        );
    }

    // Reliability: MHH and sub-unsub lose nothing at any point.
    for proto in [Protocol::Mhh, Protocol::SubUnsub] {
        for p in fig.curve(proto.label()) {
            assert_eq!(
                p.result.audit.lost, 0,
                "{proto:?} lost events: {:?}",
                p.result.audit
            );
            assert_eq!(p.result.audit.duplicates, 0);
            assert_eq!(p.result.audit.out_of_order, 0);
        }
    }
}

#[test]
fn figure6_shape_holds_at_reduced_scale() {
    let fig = figure6(&base(), &[4, 7]);

    // (a) overhead grows with network size for every protocol, and MHH stays
    // below sub-unsub at the larger size (the margin the paper reports).
    for proto in Protocol::ALL {
        let s = fig.overhead_series(proto.label());
        assert!(
            s[1].1 > s[0].1 * 0.8,
            "{proto:?} overhead should not collapse as the network grows: {s:?}"
        );
    }
    let mhh = fig.overhead_series(Protocol::Mhh.label())[1].1;
    let su = fig.overhead_series(Protocol::SubUnsub.label())[1].1;
    assert!(
        mhh < su,
        "MHH {mhh} should be cheaper than sub-unsub {su} at 49 brokers"
    );

    // (b) sub-unsub delay tracks the network diameter, so it grows and stays
    // the largest; MHH tracks the average distance.
    let su_delay = fig.delay_series(Protocol::SubUnsub.label());
    let mhh_delay = fig.delay_series(Protocol::Mhh.label());
    assert!(
        su_delay[1].1 > su_delay[0].1,
        "sub-unsub delay grows with size: {su_delay:?}"
    );
    for i in 0..2 {
        assert!(
            su_delay[i].1 > mhh_delay[i].1,
            "sub-unsub delay must dominate MHH at every size"
        );
    }
}
