//! Integration tests of the substrates through the umbrella crate: static
//! (no-mobility) pub/sub correctness and simulator invariants, plus
//! property-based tests spanning crates.

use mhh_suite::pubsub::broker::NoProtocol;
use mhh_suite::pubsub::event::EventBuilder;
use mhh_suite::pubsub::{BrokerId, ClientId, ClientSpec, Deployment, DeploymentConfig, Filter, Op};
use mhh_suite::simnet::random::DetRng;
use mhh_suite::simnet::{Network, SimTime};

#[test]
fn static_pubsub_reaches_every_matching_subscriber_on_a_large_grid() {
    let config = DeploymentConfig {
        grid_side: 7,
        seed: 3,
        ..DeploymentConfig::default()
    };
    // 3 clients per broker, subscribing to one of three groups.
    let clients: Vec<ClientSpec> = (0..147)
        .map(|i| ClientSpec {
            filter: Filter::single("group", Op::Eq, (i % 3) as i64),
            home: BrokerId((i % 49) as u32),
            mobile: false,
            initially_attached: true,
        })
        .collect();
    let mut dep: Deployment<NoProtocol> = Deployment::build(&config, &clients, |_| NoProtocol);
    // One event per group.
    for g in 0..3i64 {
        let ev = EventBuilder::new()
            .attr("group", g)
            .build(g as u64, ClientId(100), g as u64);
        dep.schedule_publish(SimTime::from_millis(1 + g as u64), ClientId(100), ev);
    }
    dep.engine.run_to_completion();
    for c in dep.clients() {
        let expect = if c.id == ClientId(100) { 0 } else { 1 };
        assert_eq!(
            c.received.len(),
            expect,
            "client {} (group {}) received wrong count",
            c.id,
            c.id.0 % 3
        );
    }
}

// Deterministic property loops (the environment cannot fetch `proptest`;
// cases are sampled from a seeded `DetRng` instead, which also makes
// failures exactly reproducible).

/// Overlay routing invariant across random grid sizes and seeds: the next
/// hop toward any destination always lies on the unique tree path, and
/// following next hops always reaches the destination in exactly
/// tree-distance steps.
#[test]
fn routing_tables_follow_tree_paths() {
    let mut sampler = DetRng::new(0x5b51);
    for _case in 0..16 {
        let side = 2 + sampler.index(7); // 2..9
        let seed = sampler.next_below(1000);
        let net = Network::grid(side, seed);
        let n = net.broker_count();
        for src in 0..n {
            for dst in 0..n {
                let mut cur = src;
                let mut steps = 0;
                while cur != dst {
                    cur = net.next_hop(cur, dst);
                    steps += 1;
                    assert!(
                        steps <= n,
                        "routing loop from {src} to {dst} (side {side}, seed {seed})"
                    );
                }
                assert_eq!(steps, net.tree_distance(src, dst) as usize);
            }
        }
    }
}

/// The grid fabric's latency is consistent with hop counts for arbitrary
/// broker pairs.
#[test]
fn fabric_latency_matches_hops() {
    use mhh_suite::simnet::{Fabric, GridFabric, NodeId};
    use std::sync::Arc;
    let mut sampler = DetRng::new(0xfab2);
    for _case in 0..16 {
        let side = 2 + sampler.index(6); // 2..8
        let seed = sampler.next_below(100);
        let net = Arc::new(Network::grid(side, seed));
        let n = net.broker_count();
        let fabric = GridFabric::paper_defaults(net);
        let a = NodeId(sampler.index(n) as u32);
        let b = NodeId(sampler.index(n) as u32);
        let hops = fabric.hops(a, b) as u64;
        assert_eq!(fabric.latency(a, b).as_micros(), hops * 10_000);
    }
}
