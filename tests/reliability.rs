//! Cross-crate integration tests: the paper's delivery guarantees, checked
//! through the full stack (workload generator → simulator → protocol →
//! audit) for all three protocols.

use mhh_suite::mobsim::{run_scenario, FaultPlan, Protocol, ScenarioConfig, Sim};

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 5,
        clients_per_broker: 3,
        mobile_fraction: 0.3,
        conn_mean_s: 25.0,
        disc_mean_s: 50.0,
        publish_interval_s: 10.0,
        duration_s: 400.0,
        seed,
        ..ScenarioConfig::paper_defaults()
    }
}

#[test]
fn mhh_is_exactly_once_and_ordered_across_seeds() {
    for seed in [1u64, 2, 3] {
        let r = run_scenario(&scenario(seed), Protocol::Mhh);
        assert!(r.handoffs > 0, "seed {seed}: no handoffs generated");
        assert_eq!(r.audit.lost, 0, "seed {seed}: {:?}", r.audit);
        assert_eq!(r.audit.duplicates, 0, "seed {seed}: {:?}", r.audit);
        assert_eq!(r.audit.out_of_order, 0, "seed {seed}: {:?}", r.audit);
    }
}

#[test]
fn sub_unsub_is_reliable_too() {
    let r = run_scenario(&scenario(4), Protocol::SubUnsub);
    assert!(r.handoffs > 0);
    assert!(r.reliable(), "{:?}", r.audit);
}

#[test]
fn home_broker_never_duplicates_or_reorders() {
    let r = run_scenario(&scenario(5), Protocol::HomeBroker);
    assert!(r.handoffs > 0);
    assert_eq!(r.audit.duplicates, 0, "{:?}", r.audit);
    assert_eq!(r.audit.out_of_order, 0, "{:?}", r.audit);
}

#[test]
fn home_broker_loses_events_under_fast_movement() {
    // Short connection periods widen the in-transit loss window of the
    // home-broker protocol (the unreliability the paper calls out), while
    // MHH on the same workload loses nothing.
    let cfg = ScenarioConfig {
        conn_mean_s: 2.0,
        disc_mean_s: 20.0,
        publish_interval_s: 4.0,
        duration_s: 500.0,
        ..scenario(6)
    };
    let hb = run_scenario(&cfg, Protocol::HomeBroker);
    let mhh = run_scenario(&cfg, Protocol::Mhh);
    assert_eq!(mhh.audit.lost, 0, "{:?}", mhh.audit);
    assert!(
        hb.audit.lost > 0,
        "expected home-broker loss under fast movement: {:?}",
        hb.audit
    );
}

#[test]
fn paired_runs_share_the_same_workload() {
    let cfg = scenario(7);
    let a = run_scenario(&cfg, Protocol::Mhh);
    let b = run_scenario(&cfg, Protocol::SubUnsub);
    let c = run_scenario(&cfg, Protocol::HomeBroker);
    assert_eq!(a.handoffs, b.handoffs);
    assert_eq!(b.handoffs, c.handoffs);
    assert_eq!(a.published, b.published);
    assert_eq!(b.published, c.published);
}

/// The broker-crash-storm environment scaled down for test speed (same
/// grid and seed, so the storm schedule is the preset's own) with lossy
/// links and publisher retransmission on, but the broker dedup layer
/// stripped: whenever the *ack* leg is the one the loss model drops, the
/// publisher re-sends a publish whose original already got through, and
/// without watermarks every such copy reaches the subscribers as an
/// audited duplicate.
fn storm_base() -> ScenarioConfig {
    Sim::scenario("broker-crash-storm")
        .clients_per_broker(2)
        .duration_s(450.0)
        .build_config()
        .expect("broker-crash-storm is registered")
        .with_loss(0.02, 0.005)
        .with_retransmit(true)
        .with_dedup_window(0)
}

/// Acceptance criterion: on the lossy crash-storm schedule, per-client
/// watermark dedup at the brokers drops the duplicate deliveries that
/// retransmitted publishes cause to *zero* — for sub-unsub, MHH and
/// home-broker alike — while the suppression work and its memory
/// high-water are recorded in the ledger and traffic report instead of
/// silently hidden.
#[test]
fn watermark_dedup_zeroes_crash_storm_duplicates() {
    let base = storm_base();
    let mut baseline_duplicates = 0u64;
    for protocol in Protocol::ALL {
        let baseline = run_scenario(&base, protocol);
        let deduped = run_scenario(
            &base.clone().with_dedup_window(64).with_mem_tracking(true),
            protocol,
        );
        baseline_duplicates += baseline.audit.duplicates;
        // Without watermarks nothing is suppressed, so the retransmit
        // copies land in the audit as duplicates.
        assert_eq!(
            baseline.recovery.duplicates_suppressed,
            0,
            "{}: no dedup layer, nothing may be suppressed",
            protocol.label()
        );
        assert_eq!(
            deduped.audit.duplicates,
            0,
            "{}: dedup must absorb every retransmit duplicate: {:?}",
            protocol.label(),
            deduped.audit
        );
        if baseline.audit.duplicates > 0 {
            // The two runs drop different envelopes once suppression skews
            // the per-link sequence numbers, so the counts need not match
            // exactly — but the layer must demonstrably engage and its
            // memory high-water must be recorded.
            assert!(
                deduped.recovery.duplicates_suppressed > 0,
                "{}: the baseline had duplicates to absorb, yet nothing was suppressed",
                protocol.label()
            );
            assert!(
                deduped.traffic.dedup_bytes_peak > 0,
                "{}: suppression happened but its memory high-water went unrecorded",
                protocol.label()
            );
        }
        assert!(
            deduped.recovery.reconciles_with(&deduped.audit),
            "{}: deduped ledger must still reconcile",
            protocol.label()
        );
    }
    assert!(
        baseline_duplicates > 0,
        "lost acks must cause duplicates somewhere, or the test proves nothing"
    );
}

/// Acceptance criterion: seeded lossy runs replay byte-identically — the
/// loss model draws from the envelope's `(seed, from, to, link_seq)`
/// identity, never from iteration order, so the same configuration always
/// drops the same envelopes.
#[test]
fn seeded_lossy_runs_replay_byte_identically() {
    let cfg = scenario(9).with_loss(0.05, 0.01);
    let a = run_scenario(&cfg, Protocol::Mhh);
    let b = run_scenario(&cfg, Protocol::Mhh);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "a seeded lossy run must replay identically"
    );
    assert!(
        a.recovery.lost_envelopes > 0,
        "5% loss over a 400s run must drop something: {:?}",
        a.recovery
    );
    assert!(
        a.recovery.reconciles_with(&a.audit),
        "every lossy delivery outcome must reconcile with the audit"
    );
}

/// The composed-stressor property test: churn × crash storm × link loss ×
/// corruption × misproclaimed handoffs on jittered links, over a seeded
/// loop, with the delivery audit as the oracle. With dedup + retransmit
/// enabled, MHH shows zero *silent* loss: the ledger reconciles exactly
/// with the audit, every dropped envelope is accounted by cause, the
/// retransmit layer demonstrably engages, and no retransmit-induced
/// duplicate ever reaches a subscriber.
#[test]
fn composed_stressors_leave_no_silent_loss_for_mhh() {
    for seed in [21u64, 22, 23] {
        let cfg = ScenarioConfig {
            conn_mean_s: 15.0,
            disc_mean_s: 30.0,
            faults: FaultPlan {
                crash_storm: Some((3, 20.0)),
                ..FaultPlan::default()
            },
            ..scenario(seed)
        }
        .with_jitter_ms(5)
        .with_misproclaim_fraction(0.2)
        .with_loss(0.02, 0.005)
        .with_dedup_window(64)
        .with_retransmit(true)
        .with_checkpoint_replication_ms(2_000);
        let r = run_scenario(&cfg, Protocol::Mhh);
        assert!(
            r.recovery.reconciles_with(&r.audit),
            "seed {seed}: audited losses/duplicates must be fully attributed: {:?} vs {:?}",
            r.recovery,
            r.audit
        );
        assert!(
            r.recovery.lost_envelopes > 0,
            "seed {seed}: the loss layer must have fired: {:?}",
            r.recovery
        );
        assert!(
            r.recovery.total_dropped() > 0,
            "seed {seed}: every drop must be accounted by cause"
        );
        assert!(
            r.recovery.retransmissions > 0,
            "seed {seed}: publish losses must have triggered retransmits: {:?}",
            r.recovery
        );
        assert_eq!(
            r.audit.duplicates, 0,
            "seed {seed}: broker dedup must absorb every retransmit duplicate: {:?}",
            r.audit
        );
        let again = run_scenario(&cfg, Protocol::Mhh);
        assert_eq!(
            format!("{r:?}"),
            format!("{again:?}"),
            "seed {seed}: the composed stressors must replay byte-identically"
        );
    }
}
