//! Cross-crate integration tests: the paper's delivery guarantees, checked
//! through the full stack (workload generator → simulator → protocol →
//! audit) for all three protocols.

use mhh_suite::mobsim::{run_scenario, Protocol, ScenarioConfig};

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 5,
        clients_per_broker: 3,
        mobile_fraction: 0.3,
        conn_mean_s: 25.0,
        disc_mean_s: 50.0,
        publish_interval_s: 10.0,
        duration_s: 400.0,
        seed,
        ..ScenarioConfig::paper_defaults()
    }
}

#[test]
fn mhh_is_exactly_once_and_ordered_across_seeds() {
    for seed in [1u64, 2, 3] {
        let r = run_scenario(&scenario(seed), Protocol::Mhh);
        assert!(r.handoffs > 0, "seed {seed}: no handoffs generated");
        assert_eq!(r.audit.lost, 0, "seed {seed}: {:?}", r.audit);
        assert_eq!(r.audit.duplicates, 0, "seed {seed}: {:?}", r.audit);
        assert_eq!(r.audit.out_of_order, 0, "seed {seed}: {:?}", r.audit);
    }
}

#[test]
fn sub_unsub_is_reliable_too() {
    let r = run_scenario(&scenario(4), Protocol::SubUnsub);
    assert!(r.handoffs > 0);
    assert!(r.reliable(), "{:?}", r.audit);
}

#[test]
fn home_broker_never_duplicates_or_reorders() {
    let r = run_scenario(&scenario(5), Protocol::HomeBroker);
    assert!(r.handoffs > 0);
    assert_eq!(r.audit.duplicates, 0, "{:?}", r.audit);
    assert_eq!(r.audit.out_of_order, 0, "{:?}", r.audit);
}

#[test]
fn home_broker_loses_events_under_fast_movement() {
    // Short connection periods widen the in-transit loss window of the
    // home-broker protocol (the unreliability the paper calls out), while
    // MHH on the same workload loses nothing.
    let cfg = ScenarioConfig {
        conn_mean_s: 2.0,
        disc_mean_s: 20.0,
        publish_interval_s: 4.0,
        duration_s: 500.0,
        ..scenario(6)
    };
    let hb = run_scenario(&cfg, Protocol::HomeBroker);
    let mhh = run_scenario(&cfg, Protocol::Mhh);
    assert_eq!(mhh.audit.lost, 0, "{:?}", mhh.audit);
    assert!(
        hb.audit.lost > 0,
        "expected home-broker loss under fast movement: {:?}",
        hb.audit
    );
}

#[test]
fn paired_runs_share_the_same_workload() {
    let cfg = scenario(7);
    let a = run_scenario(&cfg, Protocol::Mhh);
    let b = run_scenario(&cfg, Protocol::SubUnsub);
    let c = run_scenario(&cfg, Protocol::HomeBroker);
    assert_eq!(a.handoffs, b.handoffs);
    assert_eq!(b.handoffs, c.handoffs);
    assert_eq!(a.published, b.published);
    assert_eq!(b.published, c.published);
}
