//! Integration tests of the pluggable mobility subsystem: model determinism
//! and trace validity (property-style, sampled from a seeded rng), delivery
//! guarantees for every model × protocol combination, and byte-identity of
//! the parallel sweep runner against a serial run.

use std::sync::Arc;

use mhh_suite::mobility::sweep::{available_workers, map_parallel, map_serial};
use mhh_suite::mobility::trace::validate_trace;
use mhh_suite::mobility::{MobilityWorld, ModelKind, TraceRecord};
use mhh_suite::mobsim::experiments::{
    figure5_with_workers, mobility_matrix, mobility_matrix_with_workers,
};
use mhh_suite::mobsim::report::{matrix_to_json, render_matrix};
use mhh_suite::mobsim::{run_scenario, Protocol, ScenarioConfig};
use mhh_suite::simnet::random::DetRng;

/// Every model kind, including a playback trace that chains correctly from
/// the workload's home assignment (client i lives at broker i % brokers).
fn all_kinds() -> Vec<ModelKind> {
    let mut kinds = ModelKind::synthetic();
    kinds.push(ModelKind::TracePlayback(Arc::new(vec![
        TraceRecord {
            at_s: 40.0,
            client: 0,
            from: 0,
            to: 5,
        },
        TraceRecord {
            at_s: 120.0,
            client: 0,
            from: 5,
            to: 2,
        },
        TraceRecord {
            at_s: 60.0,
            client: 3,
            from: 3,
            to: 11,
        },
        TraceRecord {
            at_s: 200.0,
            client: 3,
            from: 11,
            to: 3,
        },
        TraceRecord {
            at_s: 90.0,
            client: 10,
            from: 10,
            to: 6,
        },
    ])));
    kinds
}

fn small_world() -> MobilityWorld {
    MobilityWorld::grid(4, 40.0, 20.0, 600.0, 77)
}

/// Property: identical seeds produce identical traces; traces always satisfy
/// the structural invariants (chained positions, no self-moves, monotone
/// in-horizon times).
#[test]
fn every_model_is_deterministic_and_never_self_moves() {
    let world = small_world();
    let brokers = world.broker_count() as u32;
    let mut sampler = DetRng::new(0xdecaf);
    for kind in all_kinds() {
        let model = kind.build();
        for _case in 0..24 {
            let client = sampler.next_below(16) as u32;
            let home = sampler.next_below(brokers as u64) as u32;
            let seed = sampler.next_u64();
            let a = model.trace(&world, client, home, seed);
            let b = model.trace(&world, client, home, seed);
            assert_eq!(a, b, "{}: same seed must give the same trace", kind.label());
            validate_trace(&world, home, &a).unwrap_or_else(|e| {
                panic!(
                    "{}: invalid trace (client {client}, home {home}, seed {seed}): {e}",
                    kind.label()
                )
            });
            for step in &a.steps {
                assert_ne!(step.from, step.to, "{}: self-move", kind.label());
            }
        }
    }
}

/// Synthetic models must actually respond to the seed (playback ignores it
/// by design).
#[test]
fn synthetic_models_vary_with_the_seed() {
    let world = small_world();
    for kind in ModelKind::synthetic() {
        let model = kind.build();
        let a = model.trace(&world, 0, 5, 1);
        let b = model.trace(&world, 0, 5, 2);
        assert!(!a.steps.is_empty());
        assert_ne!(a, b, "{}: different seeds, same trace", kind.label());
    }
}

fn matrix_base() -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 4,
        clients_per_broker: 3,
        mobile_fraction: 0.25,
        conn_mean_s: 60.0,
        disc_mean_s: 30.0,
        publish_interval_s: 15.0,
        duration_s: 480.0,
        seed: 21,
        ..ScenarioConfig::paper_defaults()
    }
}

/// Every mobility model × every protocol: MHH and sub-unsub deliver
/// exactly-once and in order under all five movement patterns; home-broker
/// never duplicates or reorders (its small in-transit loss window is the
/// unreliability the paper calls out, so it is bounded, not forbidden).
#[test]
fn all_models_times_all_protocols_keep_the_delivery_guarantees() {
    for kind in all_kinds() {
        let config = matrix_base().with_mobility(kind.clone());
        for protocol in Protocol::ALL {
            let r = run_scenario(&config, protocol);
            assert!(
                r.handoffs > 0,
                "{} × {}: workload produced no handoffs",
                kind.label(),
                protocol.label()
            );
            match protocol {
                Protocol::Mhh | Protocol::SubUnsub => assert!(
                    r.reliable(),
                    "{} × {}: {:?}",
                    kind.label(),
                    protocol.label(),
                    r.audit
                ),
                Protocol::HomeBroker => {
                    assert_eq!(r.audit.duplicates, 0, "{}: {:?}", kind.label(), r.audit);
                    assert_eq!(r.audit.out_of_order, 0, "{}: {:?}", kind.label(), r.audit);
                    assert!(
                        r.loss_rate() < 0.02,
                        "{}: home-broker loss rate {} out of bounds: {:?}",
                        kind.label(),
                        r.loss_rate(),
                        r.audit
                    );
                }
            }
        }
    }
}

/// The short-hop models are where MHH's hop-by-hop migration pays off most:
/// its per-handoff overhead advantage over sub-unsub must be at least as
/// large under adjacent-hop movement as under the paper's uniform jumps.
#[test]
fn short_hop_models_magnify_mhh_overhead_advantage() {
    let matrix = mobility_matrix(&matrix_base(), &ModelKind::synthetic());
    let advantage = |model: &ModelKind| {
        let mhh = matrix.cell(model, "MHH").unwrap();
        let su = matrix.cell(model, "sub-unsub").unwrap();
        su.result.overhead_per_handoff / mhh.result.overhead_per_handoff
    };
    let uniform = advantage(&ModelKind::UniformRandom);
    assert!(
        uniform > 1.0,
        "MHH must beat sub-unsub even under uniform jumps"
    );
    for short_hop in [
        ModelKind::RandomWaypoint { pause_mean_s: 60.0 },
        ModelKind::ManhattanGrid,
    ] {
        assert!(
            advantage(&short_hop) > uniform,
            "{short_hop} advantage {} should exceed uniform-random {uniform}",
            advantage(&short_hop)
        );
    }
}

/// The parallel sweep runner must produce byte-identical results to a serial
/// run of the same seeds — for the generic executor, the figure sweeps and
/// the model matrix.
#[test]
fn parallel_sweeps_are_byte_identical_to_serial() {
    let base = ScenarioConfig {
        duration_s: 240.0,
        conn_mean_s: 30.0,
        ..matrix_base()
    };

    let serial_fig = figure5_with_workers(&base, &[10.0, 60.0], 1);
    let parallel_fig = figure5_with_workers(&base, &[10.0, 60.0], 4);
    assert_eq!(
        format!("{:?}", serial_fig.points),
        format!("{:?}", parallel_fig.points)
    );

    let kinds = ModelKind::synthetic();
    let serial_m = mobility_matrix_with_workers(&base, &kinds, 1);
    let parallel_m = mobility_matrix_with_workers(&base, &kinds, 4);
    assert_eq!(
        format!("{:?}", serial_m.points),
        format!("{:?}", parallel_m.points)
    );

    // The reports built from them are identical too.
    assert_eq!(render_matrix(&serial_m), render_matrix(&parallel_m));
    assert_eq!(matrix_to_json(&serial_m), matrix_to_json(&parallel_m));

    // Generic executor sanity at several worker counts.
    let items: Vec<u64> = (0..100).collect();
    let expect = map_serial(&items, |x| x.wrapping_mul(0x9e37_79b9));
    for workers in [2, 4, 16] {
        assert_eq!(
            map_parallel(&items, workers, |x| x.wrapping_mul(0x9e37_79b9)),
            expect
        );
    }
}

/// Wall-clock speedup of the parallel runner. Ignored by default: wall-clock
/// assertions flake when sibling tests contend for the same cores (CI
/// machines are small), and the tracked evidence lives in
/// `BENCH_mobility.json` anyway. Run explicitly on an otherwise-idle
/// ≥ 4-core machine: `cargo test --release -- --ignored speedup`.
#[test]
#[ignore = "wall-clock sensitive; run explicitly on an idle multicore machine"]
fn parallel_sweep_speedup_on_multicore() {
    let workers = available_workers();
    if workers < 4 {
        eprintln!("skipping speedup assertion: only {workers} worker(s) available");
        return;
    }
    let base = matrix_base();
    let sweep = [5.0, 20.0, 60.0, 120.0];
    let t0 = std::time::Instant::now();
    let serial = figure5_with_workers(&base, &sweep, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let parallel = figure5_with_workers(&base, &sweep, workers);
    let parallel_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        format!("{:?}", serial.points),
        format!("{:?}", parallel.points)
    );
    let speedup = serial_s / parallel_s;
    assert!(
        speedup > 1.5,
        "expected >1.5x speedup on {workers} workers, measured {speedup:.2}x \
         (serial {serial_s:.2}s, parallel {parallel_s:.2}s)"
    );
}

/// Points of figure sweeps carry the mobility-model label end to end.
#[test]
fn figure_points_are_labelled_with_the_model() {
    let base = ScenarioConfig {
        duration_s: 240.0,
        mobility: ModelKind::ManhattanGrid,
        ..matrix_base()
    };
    let fig = figure5_with_workers(&base, &[30.0], 1);
    assert!(fig.points.iter().all(|p| p.mobility == "manhattan-grid"));
    let json = mhh_suite::mobsim::report::to_json(&fig);
    assert!(json.contains("\"mobility\": \"manhattan-grid\""));
}
