//! Integration tests of the failure & recovery subsystem: fault injection
//! end to end (schedule → engine drops → overlay repair → recovery ledger)
//! across every registered protocol, including the self-stabilizing PSVR
//! variant from [`ProtocolRegistry::extended`].
//!
//! The headline invariant: the per-outage attribution in the
//! [`RecoveryLedger`](mhh_suite::mobsim::RecoveryLedger) reconciles
//! *exactly* with the delivery audit — every lost and duplicated delivery
//! is charged to an outage window (or explicitly reported as
//! unattributed), so the failure panel never reports numbers that don't
//! add up.

use mhh_suite::mobsim::protocols::ProtocolRegistry;
use mhh_suite::mobsim::{
    run_scenario, run_scenario_perf, run_spec, scenarios, FaultPlan, Protocol, ScenarioConfig, Sim,
    Workload, FAILURE_PRESETS,
};

/// The broker-crash-storm environment scaled down for test speed: same
/// grid and seed (so the storm schedule is the preset's), fewer clients
/// and a shorter horizon.
fn stormy_config() -> ScenarioConfig {
    Sim::scenario("broker-crash-storm")
        .clients_per_broker(2)
        .duration_s(450.0)
        .build_config()
        .expect("broker-crash-storm is registered")
}

/// Acceptance criterion: fault-injected runs stay fully deterministic —
/// the same schedule and seed produce byte-identical results (metrics,
/// ledgers, drops) for every protocol in the extended registry.
#[test]
fn fault_runs_are_deterministic_across_all_four_protocols() {
    let config = stormy_config();
    let registry = ProtocolRegistry::extended();
    assert_eq!(registry.specs().len(), 4, "three builtins plus PSVR");
    for spec in registry.specs() {
        let first = run_spec(&config, spec);
        let second = run_spec(&config, spec);
        assert_eq!(
            format!("{first:?}"),
            format!("{second:?}"),
            "{}: a seeded fault schedule must replay identically",
            spec.label()
        );
        assert!(
            !first.recovery.is_empty(),
            "{}: the storm must leave outage records",
            spec.label()
        );
    }
}

/// Acceptance criterion: on both failure presets, every protocol's
/// recovery ledger partitions the audited losses and duplicates exactly —
/// per-outage counts plus the unattributed remainder equal the audit's
/// totals.
#[test]
fn recovery_ledger_reconciles_with_the_audit_on_both_presets() {
    let registry = ProtocolRegistry::extended();
    for name in FAILURE_PRESETS {
        let preset = scenarios::find(name).expect("failure preset registered");
        let config = Sim::config(preset.config)
            .clients_per_broker(2)
            .duration_s(450.0)
            .build_config()
            .expect("config-seeded builder cannot miss");
        for spec in registry.specs() {
            let r = run_spec(&config, spec);
            assert!(
                !r.recovery.is_empty(),
                "{name} × {}: outage windows recorded",
                spec.label()
            );
            assert!(
                r.recovery.total_dropped() > 0,
                "{name} × {}: the faults must actually drop envelopes",
                spec.label()
            );
            assert!(
                r.recovery.reconciles_with(&r.audit),
                "{name} × {}: ledger lost={}+{} dup={}+{} vs audit lost={} dup={}",
                spec.label(),
                r.recovery.total_lost(),
                r.recovery.unattributed_lost,
                r.recovery.total_duplicates(),
                r.recovery.unattributed_duplicates,
                r.audit.lost,
                r.audit.duplicates
            );
        }
    }
}

/// Acceptance criterion: dyn-dispatched runs stay byte-identical to the
/// generic path *under faults* — the repair drives, fault-aware MHH
/// constructor and recovery ledger must not diverge between the two
/// dispatch layers.
#[test]
fn dyn_runs_stay_byte_identical_under_faults() {
    let config = stormy_config();
    let registry = ProtocolRegistry::builtin();
    for protocol in Protocol::ALL {
        let generic = run_scenario(&config, protocol);
        let spec = registry.find(protocol.name()).expect("builtin");
        let erased = run_spec(&config, spec);
        assert_eq!(
            format!("{generic:?}"),
            format!("{erased:?}"),
            "{}: dyn dispatch must not change any metric under faults",
            protocol.label()
        );
    }
}

/// A zero-fault plan must leave the engine on its fast path: no fault
/// schedule installed, no drops, and an empty recovery ledger whose JSON
/// section renders as `null`.
#[test]
fn zero_fault_plans_leave_no_recovery_trace() {
    let config = Sim::scenario("trace-smoke")
        .build_config()
        .expect("trace-smoke is registered");
    assert!(config.faults.is_empty());
    let r = run_scenario(&config, Protocol::Mhh);
    assert!(r.recovery.is_empty());
    assert_eq!(r.recovery.total_dropped(), 0);
    assert!(r.recovery.reconciles_with(&r.audit), "trivially reconciles");
}

/// Satellite criterion: the runner injects the timeline lazily, so the
/// engine's peak queue depth stays far below the workload's total
/// timeline length even on a publish-heavy faulty run. (Eager injection
/// would put the whole timeline in the queue up front.)
#[test]
fn lazy_timeline_injection_keeps_the_event_queue_shallow() {
    // Fault-free variant of the storm workload: no eagerly scheduled
    // repair drives, so the queue holds only in-flight traffic plus the
    // lazily injected timeline prefix.
    let config = Sim::config(stormy_config())
        .faults(FaultPlan::default())
        .build_config()
        .expect("config-seeded builder cannot miss");
    let timeline_len = Workload::generate(&config).timeline.len();
    assert!(
        timeline_len > 500,
        "need a non-trivial timeline to make the claim meaningful, got {timeline_len}"
    );
    let (r, perf) = run_scenario_perf(&config, Protocol::Mhh);
    assert!(r.reliable(), "{:?}", r.audit);
    assert!(
        perf.peak_queue_depth < timeline_len / 4,
        "peak queue depth {} should stay well below the {timeline_len}-entry \
         timeline under lazy injection",
        perf.peak_queue_depth
    );

    // Under the storm the queue additionally carries the eagerly
    // scheduled repair drives, but still never the whole timeline.
    let (_, stormy_perf) = run_scenario_perf(&stormy_config(), Protocol::Mhh);
    assert!(
        stormy_perf.peak_queue_depth < timeline_len,
        "even with repair drives the queue never holds the full timeline \
         ({} vs {timeline_len})",
        stormy_perf.peak_queue_depth
    );
}

/// The builder's `faults` override reshapes the compiled schedule: the
/// plan's explicit windows land verbatim, and clearing the plan restores
/// the fault-free fast path on the same preset.
#[test]
fn builder_fault_overrides_compile_into_the_schedule() {
    let base = stormy_config();
    let network = base.build_network();
    assert_eq!(base.fault_schedule(&network).windows().len(), 6);

    let explicit = Sim::config(base.clone())
        .faults(FaultPlan {
            broker_crashes: vec![(2, 50.0, 80.0)],
            ..FaultPlan::default()
        })
        .build_config()
        .expect("config-seeded builder cannot miss");
    let schedule = explicit.fault_schedule(&network);
    assert_eq!(schedule.windows().len(), 1);
    assert_eq!(schedule.windows()[0].scope_label(), "broker 2");

    let cleared = Sim::config(base)
        .faults(FaultPlan::default())
        .build_config()
        .expect("config-seeded builder cannot miss");
    assert!(cleared.fault_schedule(&network).is_empty());
}
