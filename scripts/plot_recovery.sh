#!/usr/bin/env bash
# Plot the failure & recovery panel emitted by
#
#   cargo run --release --example reproduce_figures -- failure
#
# Usage: scripts/plot_recovery.sh [failure_panel.json]
#
# For every scenario in the panel this extracts two TSVs
# (failure_panel.<scenario>.tsv: one row per outage window, per-protocol
# lost-delivery and time-to-repair columns;
# failure_panel.<scenario>.causes.tsv: one row per protocol with the
# ledger's loss-by-cause and dedup/retransmit accounting) and, when
# gnuplot is installed, renders recovery_<scenario>.svg via
# plot_recovery.gp — clustered per-outage histograms (losses on top,
# repair times below) plus the per-protocol loss-by-cause panel when the
# reliability layer left anything to show. Without gnuplot the TSVs are
# still written for any other plotting tool.
set -euo pipefail

panel="${1:-failure_panel.json}"
gp="$(dirname "$0")/plot_recovery.gp"
[ -r "$panel" ] || { echo "error: cannot read $panel" >&2; exit 1; }

# Flatten points -> TSVs per scenario. Only the Python stdlib is used.
mapfile -t scenarios < <(python3 - "$panel" <<'PY'
import json, sys

panel = json.load(open(sys.argv[1]))
by_scenario = {}
for p in panel["points"]:
    by_scenario.setdefault(p["scenario"], []).append(p)

for scenario, points in by_scenario.items():
    protocols = [p["protocol"] for p in points]
    ledgers = [p["result"]["recovery"] for p in points]
    if any(l is None for l in ledgers):
        continue  # a zero-fault scenario has nothing to plot
    out = f"failure_panel.{scenario}.tsv"
    with open(out, "w") as f:
        head = ["outage"]
        head += [f'"{p} lost"' for p in protocols]
        head += [f'"{p} repair ms"' for p in protocols]
        print("\t".join(head), file=f)
        for i, outage in enumerate(ledgers[0]["outages"]):
            label = '"{} {} [{:.0f}s,{:.0f}s)"'.format(
                outage["kind"], outage["scope"],
                outage["start_ms"] / 1000, outage["end_ms"] / 1000)
            row = [label]
            row += [str(l["outages"][i]["lost"]) for l in ledgers]
            row += ["NaN" if l["outages"][i]["repair_ms"] is None
                    else str(l["outages"][i]["repair_ms"]) for l in ledgers]
            print("\t".join(row), file=f)

    # Loss-by-cause / dedup accounting: one row per protocol. Only worth a
    # panel when some cause beyond the fault windows fired (link loss,
    # corruption, suppression, retransmits, stale checkpoint replicas).
    causes = [
        ("window dropped",
         lambda l: sum(o["dropped_envelopes"] for o in l["outages"])),
        ("link lost", lambda l: l.get("lost_envelopes", 0)),
        ("corrupted", lambda l: l.get("corrupted", 0)),
        ("dup suppressed", lambda l: l.get("duplicates_suppressed", 0)),
        ("retransmits", lambda l: l.get("retransmissions", 0)),
        ("stale resubs", lambda l: l.get("stale_resubscribes", 0)),
    ]
    reliability_active = any(
        fn(l) for l in ledgers for (name, fn) in causes[1:])
    if reliability_active:
        out = f"failure_panel.{scenario}.causes.tsv"
        with open(out, "w") as f:
            print("\t".join(["protocol"] + [f'"{n}"' for n, _ in causes]),
                  file=f)
            for proto, ledger in zip(protocols, ledgers):
                row = [f'"{proto}"'] + [str(fn(ledger)) for _, fn in causes]
                print("\t".join(row), file=f)
    print(f"{scenario}\t{len(protocols)}\t{int(reliability_active)}")
PY
)

for line in "${scenarios[@]}"; do
    IFS=$'\t' read -r scenario nproto causes <<<"$line"
    tsv="failure_panel.${scenario}.tsv"
    echo "wrote $tsv"
    cause_args=()
    if [ "$causes" = 1 ]; then
        echo "wrote failure_panel.${scenario}.causes.tsv"
        cause_args=(-e "causefile='failure_panel.${scenario}.causes.tsv'")
    fi
    if command -v gnuplot >/dev/null; then
        gnuplot -e "datafile='$tsv'" -e "outfile='recovery_${scenario}.svg'" \
                -e "scenario='$scenario'" -e "nproto=$nproto" \
                ${cause_args[@]+"${cause_args[@]}"} "$gp"
        echo "wrote recovery_${scenario}.svg"
    else
        echo "gnuplot not found: skipped recovery_${scenario}.svg" >&2
    fi
done
