# Per-outage failure & recovery panel: clustered histograms of lost
# deliveries (top) and time-to-repair (middle) per protocol, one cluster
# per outage window, plus — when the reliability layer is active — a
# per-protocol loss-by-cause / dedup panel (bottom): envelopes dropped
# inside fault windows vs. link loss vs. corruption, next to the
# duplicates the broker watermarks suppressed and the publisher
# retransmissions that recovered lost publishes.
#
# Driven by plot_recovery.sh, which supplies:
#   datafile  TSV from failure_panel.json (header row, outage label in
#             column 1, then nproto lost columns, then nproto repair
#             columns)
#   causefile TSV with one row per protocol and loss-by-cause columns
#             (window-dropped, link-lost, corrupted, dup-suppressed,
#             retransmits, stale resubs); optional — without it only the
#             two per-outage panels are drawn
#   outfile   SVG to write
#   scenario  scenario name for the title
#   nproto    number of protocol columns per metric
#
# Standalone: gnuplot -e "datafile='...'" -e "causefile='...'" \
#                     -e "outfile='...'" -e "scenario='...'" -e "nproto=4" \
#                     scripts/plot_recovery.gp

have_causes = exists("causefile")

if (have_causes) {
    set terminal svg size 1000,1100 dynamic background 'white'
} else {
    set terminal svg size 1000,760 dynamic background 'white'
}
set output outfile

set datafile separator '\t'
set datafile missing 'NaN'
set style data histograms
set style histogram clustered gap 1
set style fill solid 0.8 border -1
set boxwidth 0.9
set key outside right top autotitle columnhead
set grid ytics
set xtics rotate by -25 scale 0
set bmargin 6

if (have_causes) {
    set multiplot layout 3,1 title sprintf("failure & recovery — %s", scenario)
} else {
    set multiplot layout 2,1 title sprintf("failure & recovery — %s", scenario)
}

set ylabel 'lost deliveries'
plot for [i=2:1+nproto] datafile using i:xtic(1)

set ylabel 'time to repair (ms)'
plot for [i=2+nproto:1+2*nproto] datafile using i:xtic(1)

if (have_causes) {
    set ylabel 'envelopes / deliveries'
    set xtics rotate by 0
    plot for [i=2:7] causefile using i:xtic(1)
}

unset multiplot
