# Per-outage failure & recovery panel: clustered histograms of lost
# deliveries (top) and time-to-repair (bottom) per protocol, one cluster
# per outage window.
#
# Driven by plot_recovery.sh, which supplies:
#   datafile  TSV from failure_panel.json (header row, outage label in
#             column 1, then nproto lost columns, then nproto repair
#             columns)
#   outfile   SVG to write
#   scenario  scenario name for the title
#   nproto    number of protocol columns per metric
#
# Standalone: gnuplot -e "datafile='...'" -e "outfile='...'" \
#                     -e "scenario='...'" -e "nproto=4" scripts/plot_recovery.gp

set terminal svg size 1000,760 dynamic background 'white'
set output outfile

set datafile separator '\t'
set datafile missing 'NaN'
set style data histograms
set style histogram clustered gap 1
set style fill solid 0.8 border -1
set boxwidth 0.9
set key outside right top autotitle columnhead
set grid ytics
set xtics rotate by -25 scale 0
set bmargin 6

set multiplot layout 2,1 title sprintf("failure & recovery — %s", scenario)

set ylabel 'lost deliveries'
plot for [i=2:1+nproto] datafile using i:xtic(1)

set ylabel 'time to repair (ms)'
plot for [i=2+nproto:1+2*nproto] datafile using i:xtic(1)

unset multiplot
